// Experiment engine: registry coverage, backend parity with the direct
// pipeline, sweep determinism across thread counts, and error surfacing
// (failed trials must be counted, not silently folded into `trials`).
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "core/constructions.hpp"
#include "engine/engine.hpp"
#include "sim/consistency.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"
#include "trace/serialize.hpp"
#include "util/rng.hpp"

namespace {

using namespace cn;

TEST(EngineRegistry, BuiltinsRegistered) {
  const std::set<std::string> expected = {
      "simulator", "sim_burst",      "sim_heterogeneous", "wave",
      "optimizer", "msg",            "concurrent",        "fetch_inc",
      "mcs",       "combining_tree", "diffracting_tree",  "replay",
      "service"};
  const std::vector<std::string> names = engine::backend_names();
  const std::set<std::string> have(names.begin(), names.end());
  for (const std::string& key : expected) {
    EXPECT_TRUE(have.count(key)) << "missing backend: " << key;
    const engine::TraceSource* src = engine::find_backend(key);
    ASSERT_NE(src, nullptr);
    EXPECT_EQ(src->name(), key);
    EXPECT_FALSE(src->description().empty());
  }
  EXPECT_EQ(engine::find_backend("no_such_backend"), nullptr);
}

TEST(EngineRegistry, UnknownBackendIsAnErrorResult) {
  engine::RunSpec spec;
  spec.backend = "no_such_backend";
  const engine::RunResult res = engine::run_backend(spec);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.error_kind, engine::ErrorKind::kSpecInvalid);
  EXPECT_NE(res.error.find("no_such_backend"), std::string::npos);
  // The error names the registry, so a config typo surfaces the menu.
  for (const std::string& name : engine::backend_names()) {
    EXPECT_NE(res.error.find(name), std::string::npos) << name;
  }
}

// The simulator backend must be a pure repackaging of the direct
// generate_workload -> simulate -> analyze pipeline: same seed, same
// trace, same report.
TEST(EngineBackends, SimulatorParityWithDirectPipeline) {
  const Network net = make_bitonic(8);

  engine::RunSpec spec;
  spec.net = &net;
  spec.processes = 6;
  spec.ops_per_process = 5;
  spec.c_min = 1.0;
  spec.c_max = 2.75;
  spec.local_delay_min = 0.5;
  spec.seed = 0xD1CE;
  const engine::RunResult res = engine::run_backend(spec);
  ASSERT_TRUE(res.ok()) << res.error;

  WorkloadSpec wl;
  wl.processes = 6;
  wl.tokens_per_process = 5;
  wl.c_min = 1.0;
  wl.c_max = 2.75;
  wl.local_delay_min = 0.5;
  wl.local_delay_max = 0.5 + 2.0;  // RunSpec default: local_delay_min + 2
  Xoshiro256 rng(0xD1CE);
  const TimedExecution exec = generate_workload(net, wl, rng);
  const SimulationResult sim = simulate(exec);
  ASSERT_TRUE(sim.ok());
  const ConsistencyReport direct = analyze(sim.trace);

  ASSERT_EQ(res.trace.size(), sim.trace.size());
  for (std::size_t i = 0; i < sim.trace.size(); ++i) {
    EXPECT_EQ(res.trace[i].token, sim.trace[i].token);
    EXPECT_EQ(res.trace[i].process, sim.trace[i].process);
    EXPECT_EQ(res.trace[i].value, sim.trace[i].value);
    EXPECT_DOUBLE_EQ(res.trace[i].t_in, sim.trace[i].t_in);
    EXPECT_DOUBLE_EQ(res.trace[i].t_out, sim.trace[i].t_out);
  }
  EXPECT_EQ(res.report.non_linearizable, direct.non_linearizable);
  EXPECT_EQ(res.report.non_sequentially_consistent,
            direct.non_sequentially_consistent);
  EXPECT_DOUBLE_EQ(res.report.f_nl, direct.f_nl);
  EXPECT_DOUBLE_EQ(res.report.f_nsc, direct.f_nsc);
}

// Named-network resolution must agree with passing the network in.
TEST(EngineBackends, NamedNetworkMatchesExplicitNetwork) {
  engine::RunSpec by_name;
  by_name.network = "periodic";
  by_name.width = 8;
  by_name.seed = 17;

  const Network net = make_periodic(8);
  engine::RunSpec by_ptr = by_name;
  by_ptr.net = &net;

  const engine::RunResult a = engine::run_backend(by_name);
  const engine::RunResult b = engine::run_backend(by_ptr);
  ASSERT_TRUE(a.ok()) << a.error;
  ASSERT_TRUE(b.ok()) << b.error;
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].value, b.trace[i].value);
    EXPECT_DOUBLE_EQ(a.trace[i].t_out, b.trace[i].t_out);
  }
}

TEST(EngineBackends, WaveBackendReportsSplitMetrics) {
  engine::RunSpec spec;
  spec.backend = "wave";
  spec.network = "bitonic";
  spec.width = 8;
  spec.ell = 1;
  const engine::RunResult res = engine::run_backend(spec);
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_GT(res.metric("required_ratio"), 1.0);
  EXPECT_GT(res.metric("ratio_used"), res.metric("required_ratio") - 1e-9);
  EXPECT_GT(res.metric("wave1_size"), 0.0);
  // The three-wave execution is the paper's F_nl = F_nsc = 1/3 witness.
  EXPECT_GT(res.report.f_nl, 0.0);
  EXPECT_GT(res.report.f_nsc, 0.0);
}

TEST(EngineSweep, TrialSeedIsPureAndSpread) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t t = 0; t < 256; ++t) {
    const std::uint64_t s = engine::trial_seed(42, t);
    EXPECT_EQ(s, engine::trial_seed(42, t));  // pure function of (base, t)
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 256u);                        // no collisions
  EXPECT_NE(engine::trial_seed(42, 0), engine::trial_seed(43, 0));
}

// The acceptance criterion: aggregates (and the formatted report built
// from them) must be byte-identical at any sweeper thread count.
TEST(EngineSweep, DeterministicAcrossThreadCounts) {
  engine::SweepSpec sweep;
  sweep.base.network = "bitonic";
  sweep.base.width = 8;
  sweep.base.c_max = 3.0;  // past the ratio-2 bound so violations occur
  sweep.base.seed = 0xFEED;
  sweep.trials = 96;

  sweep.threads = 1;
  const engine::SweepStats one = engine::sweep_stats(sweep);
  sweep.threads = 2;
  const engine::SweepStats two = engine::sweep_stats(sweep);
  sweep.threads = 8;
  const engine::SweepStats eight = engine::sweep_stats(sweep);

  for (const engine::SweepStats* s : {&two, &eight}) {
    EXPECT_EQ(s->trials, one.trials);
    EXPECT_EQ(s->completed, one.completed);
    EXPECT_EQ(s->errors, one.errors);
    EXPECT_EQ(s->lin_violations, one.lin_violations);
    EXPECT_EQ(s->sc_violations, one.sc_violations);
    EXPECT_EQ(s->worst_f_nl, one.worst_f_nl);    // exact, not approximate
    EXPECT_EQ(s->worst_f_nsc, one.worst_f_nsc);
    EXPECT_EQ(s->total_tokens, one.total_tokens);
    EXPECT_EQ(s->metric_sums, one.metric_sums);  // summed in trial order
    EXPECT_EQ(engine::format_report(sweep.base, *s),
              engine::format_report(sweep.base, one));
    EXPECT_EQ(engine::to_json(*s), engine::to_json(one));
  }
  EXPECT_EQ(one.completed, one.trials);
  EXPECT_GT(one.total_tokens, 0u);
}

// keep_results returns per-trial results in trial order, matching a
// direct run with the derived seed.
TEST(EngineSweep, KeepResultsMatchesDirectRuns) {
  engine::SweepSpec sweep;
  sweep.base.network = "bitonic";
  sweep.base.width = 4;
  sweep.base.processes = 4;
  sweep.base.ops_per_process = 2;
  sweep.base.seed = 99;
  sweep.trials = 5;
  sweep.threads = 3;
  sweep.keep_results = true;
  const engine::SweepOutcome out = engine::sweep(sweep);
  ASSERT_EQ(out.results.size(), 5u);
  for (std::uint64_t t = 0; t < 5; ++t) {
    engine::RunSpec direct = sweep.base;
    direct.seed = engine::trial_seed(99, t);
    const engine::RunResult ref = engine::run_backend(direct);
    ASSERT_TRUE(out.results[t].ok());
    ASSERT_EQ(out.results[t].trace.size(), ref.trace.size());
    for (std::size_t i = 0; i < ref.trace.size(); ++i) {
      EXPECT_EQ(out.results[t].trace[i].value, ref.trace[i].value);
    }
  }
}

// The old bench loop silently dropped failed simulations while still
// counting them toward `trials`. Failures must now be surfaced.
TEST(EngineSweep, ErrorsAreCountedAndFirstErrorPropagates) {
  engine::SweepSpec sweep;
  sweep.base.network = "bitonic";
  sweep.base.width = 6;  // not a power of two: every trial fails
  sweep.trials = 7;
  sweep.threads = 4;
  const engine::SweepStats stats = engine::sweep_stats(sweep);
  EXPECT_EQ(stats.trials, 7u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.errors, 7u);
  EXPECT_FALSE(stats.first_error.empty());
  EXPECT_EQ(stats.total_tokens, 0u);
  // The taxonomy classifies all of them as spec_invalid, and the entry
  // of the lowest-index failed trial carries the first_error message.
  ASSERT_EQ(stats.error_table.count("spec_invalid"), 1u);
  EXPECT_EQ(stats.error_table.at("spec_invalid").count, 7u);
  EXPECT_EQ(stats.error_table.at("spec_invalid").first_trial, 0u);
  EXPECT_EQ(stats.error_table.at("spec_invalid").first_message,
            stats.first_error);
  // And the human-readable report carries them.
  const std::string report = engine::format_report(sweep.base, stats);
  EXPECT_NE(report.find("first error:"), std::string::npos);
  EXPECT_NE(report.find("spec_invalid"), std::string::npos);
  EXPECT_NE(engine::to_json(stats).find("first_error"), std::string::npos);
  EXPECT_NE(engine::to_json(stats).find("error_table"), std::string::npos);
}

// A clean sweep must not grow new JSON fields: the taxonomy and retry
// counters appear only when something went wrong.
TEST(EngineSweep, CleanSweepJsonIsUnchangedByTheTaxonomy) {
  engine::SweepSpec sweep;
  sweep.base.network = "bitonic";
  sweep.base.width = 4;
  sweep.base.processes = 4;
  sweep.base.ops_per_process = 2;
  sweep.trials = 4;
  const engine::SweepStats stats = engine::sweep_stats(sweep);
  ASSERT_EQ(stats.errors, 0u);
  const std::string j = engine::to_json(stats);
  EXPECT_EQ(j.find("error_table"), std::string::npos);
  EXPECT_EQ(j.find("retried_trials"), std::string::npos);
  EXPECT_EQ(j.find("fault"), std::string::npos);
}

// ---------------------------------------------------------------------
// Streaming mode (spec.keep_trace = false): incremental analysis, empty
// trace, identical results.
// ---------------------------------------------------------------------

/// The deterministic backends must serialize to the exact same JSON in
/// streaming mode as in collect mode (same report, same metrics), with
/// the trace left unmaterialized.
TEST(EngineStreaming, StreamMatchesCollectAcrossBackends) {
  for (const std::string& backend :
       {std::string("simulator"), std::string("sim_burst"),
        std::string("sim_heterogeneous"), std::string("msg"),
        std::string("wave")}) {
    engine::RunSpec spec;
    spec.backend = backend;
    spec.network = "bitonic";
    spec.width = 8;
    spec.processes = 6;
    spec.ops_per_process = 5;
    spec.c_max = 3.0;  // past the ratio-2 bound so flags exist to disagree on
    spec.seed = 0xBEEF;

    const engine::RunResult collect = engine::run_backend(spec);
    ASSERT_TRUE(collect.ok()) << backend << ": " << collect.error;
    ASSERT_FALSE(collect.trace.empty()) << backend;

    engine::RunSpec streamed_spec = spec;
    streamed_spec.keep_trace = false;
    const engine::RunResult streamed = engine::run_backend(streamed_spec);
    ASSERT_TRUE(streamed.ok()) << backend << ": " << streamed.error;
    EXPECT_TRUE(streamed.trace.empty()) << backend;
    EXPECT_EQ(streamed.report.non_linearizable,
              collect.report.non_linearizable)
        << backend;
    EXPECT_EQ(streamed.report.non_sequentially_consistent,
              collect.report.non_sequentially_consistent)
        << backend;
    EXPECT_EQ(engine::to_json(streamed), engine::to_json(collect)) << backend;
  }
}

/// Fault-injected streaming: the degradation metrics come from the
/// accumulator instead of the batch pass, and must agree exactly.
TEST(EngineStreaming, FaultedStreamMatchesCollect) {
  engine::RunSpec spec;
  spec.network = "bitonic";
  spec.width = 8;
  spec.processes = 6;
  spec.ops_per_process = 6;
  spec.c_max = 3.0;
  spec.seed = 0xFA57;
  spec.fault.enabled = true;
  spec.fault.seed = 7;
  spec.fault.p_token_loss = 0.1;
  spec.fault.p_stuck_balancer = 0.1;
  spec.fault.p_process_crash = 0.15;

  const engine::RunResult collect = engine::run_backend(spec);
  ASSERT_TRUE(collect.ok()) << collect.error;

  engine::RunSpec streamed_spec = spec;
  streamed_spec.keep_trace = false;
  const engine::RunResult streamed = engine::run_backend(streamed_spec);
  ASSERT_TRUE(streamed.ok()) << streamed.error;
  EXPECT_TRUE(streamed.trace.empty());
  EXPECT_EQ(engine::to_json(streamed), engine::to_json(collect));
  EXPECT_EQ(streamed.metric("counting_violation"),
            collect.metric("counting_violation"));
  EXPECT_EQ(streamed.metric("smoothness_gap"),
            collect.metric("smoothness_gap"));
}

/// Message duplication cannot stream natively (a duplicated delivery
/// re-counts a token after emission); the msg backend must fall back to
/// collect-then-replay and still agree with the collecting run.
TEST(EngineStreaming, MsgDuplicationFallsBackAndMatches) {
  engine::RunSpec spec;
  spec.backend = "msg";
  spec.network = "bitonic";
  spec.width = 8;
  spec.processes = 5;
  spec.ops_per_process = 4;
  spec.seed = 0xD0B;
  spec.fault.enabled = true;
  spec.fault.seed = 11;
  spec.fault.p_msg_duplicate = 0.3;

  const engine::RunResult collect = engine::run_backend(spec);
  ASSERT_TRUE(collect.ok()) << collect.error;

  engine::RunSpec streamed_spec = spec;
  streamed_spec.keep_trace = false;
  const engine::RunResult streamed = engine::run_backend(streamed_spec);
  ASSERT_TRUE(streamed.ok()) << streamed.error;
  EXPECT_TRUE(streamed.trace.empty());
  EXPECT_EQ(engine::to_json(streamed), engine::to_json(collect));
}

/// Real-thread backends stream too (no cross-run determinism to compare
/// against, but the incremental report must cover every operation).
TEST(EngineStreaming, ConcurrentBackendStreams) {
  engine::RunSpec spec;
  spec.backend = "fetch_inc";
  spec.threads = 4;
  spec.ops_per_thread = 40;
  spec.keep_trace = false;
  const engine::RunResult res = engine::run_backend(spec);
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_TRUE(res.trace.empty());
  EXPECT_EQ(res.report.total, 4u * 40u);
  // fetch_inc is linearizable: the incremental checker must agree.
  EXPECT_TRUE(res.report.linearizable());
}

/// The acceptance criterion: a streaming sweep produces the identical
/// SweepStats JSON as a collecting sweep, at any thread count. Fault
/// injection is on so real violations and degradation metric sums flow
/// through both pipelines (random pristine latencies rarely violate —
/// stuck balancers genuinely do).
TEST(EngineStreaming, SweepJsonIdenticalToCollectAtAnyThreadCount) {
  engine::SweepSpec sweep;
  sweep.base.network = "bitonic";
  sweep.base.width = 8;
  sweep.base.c_max = 3.0;
  sweep.base.seed = 0x5EED;
  sweep.base.fault.enabled = true;
  sweep.base.fault.seed = 9;
  sweep.base.fault.p_stuck_balancer = 0.1;
  sweep.base.fault.p_token_loss = 0.05;
  sweep.trials = 48;

  sweep.threads = 1;
  const engine::SweepStats collect1 = engine::sweep_stats(sweep);
  sweep.threads = 4;
  const engine::SweepStats collect4 = engine::sweep_stats(sweep);

  sweep.base.keep_trace = false;
  sweep.threads = 1;
  const engine::SweepStats stream1 = engine::sweep_stats(sweep);
  sweep.threads = 4;
  const engine::SweepStats stream4 = engine::sweep_stats(sweep);

  ASSERT_EQ(collect1.completed, collect1.trials);
  EXPECT_GT(collect1.lin_violations, 0u);  // the sweep actually flags
  EXPECT_EQ(engine::to_json(collect4), engine::to_json(collect1));
  EXPECT_EQ(engine::to_json(stream1), engine::to_json(collect1));
  EXPECT_EQ(engine::to_json(stream4), engine::to_json(collect1));
}

// ---------------------------------------------------------------------
// Trace record / replay through the engine.
// ---------------------------------------------------------------------

TEST(EngineReplay, RecordThenReplayReproducesTheReport) {
  const std::string path = testing::TempDir() + "engine_record.trace";
  engine::RunSpec spec;
  spec.network = "bitonic";
  spec.width = 8;
  spec.processes = 6;
  spec.ops_per_process = 5;
  spec.c_max = 3.0;
  spec.seed = 0x2EC0;
  spec.record_path = path;
  spec.keep_trace = false;  // recording forces collection, then drops
  const engine::RunResult recorded = engine::run_backend(spec);
  ASSERT_TRUE(recorded.ok()) << recorded.error;
  EXPECT_TRUE(recorded.trace.empty());  // dropped after the write
  ASSERT_GT(recorded.report.total, 0u);

  engine::RunSpec replay;
  replay.backend = "replay";
  replay.replay_path = path;
  const engine::RunResult replayed = engine::run_backend(replay);
  ASSERT_TRUE(replayed.ok()) << replayed.error;
  EXPECT_EQ(replayed.trace.size(), recorded.report.total);
  EXPECT_EQ(static_cast<std::size_t>(replayed.metric("replayed_records")),
            recorded.report.total);
  EXPECT_EQ(replayed.report.non_linearizable,
            recorded.report.non_linearizable);
  EXPECT_EQ(replayed.report.non_sequentially_consistent,
            recorded.report.non_sequentially_consistent);
  std::remove(path.c_str());
}

TEST(EngineBackends, ServiceBackendCountsAndReportsLatency) {
  engine::RunSpec spec;
  spec.backend = "service";
  spec.network = "bitonic";
  spec.width = 8;
  spec.threads = 4;
  spec.ops_per_thread = 100;
  spec.service_shards = 2;
  spec.service_batch = 8;
  const engine::RunResult res = engine::run_backend(spec);
  ASSERT_TRUE(res.ok()) << res.error;
  // Closed-loop clients retry rejections, so every op completes and the
  // recorded trace carries a gap-free value set.
  EXPECT_EQ(res.report.total, 400u);
  ASSERT_EQ(res.trace.size(), 400u);
  std::set<std::uint64_t> values;
  for (const TokenRecord& rec : res.trace) values.insert(rec.value);
  EXPECT_EQ(values.size(), 400u);
  EXPECT_EQ(*values.rbegin(), 399u);
  EXPECT_EQ(res.metric("total_ops", -1.0), 400.0);
  EXPECT_EQ(res.metric("shards", -1.0), 2.0);
  EXPECT_GT(res.metric("ops_per_sec", 0.0), 0.0);
  EXPECT_TRUE(res.metrics.count("p50_us"));
  EXPECT_GE(res.metric("p999_us"), res.metric("p50_us"));
}

TEST(EngineBackends, ServiceBackendStreamsWithZeroViolationsAtQuiescence) {
  engine::RunSpec spec;
  spec.backend = "service";
  spec.network = "bitonic";
  spec.width = 8;
  spec.threads = 4;
  spec.ops_per_thread = 80;
  spec.service_shards = 2;
  spec.keep_trace = false;
  const engine::RunResult res = engine::run_backend(spec);
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_TRUE(res.trace.empty());
  EXPECT_EQ(res.report.total, 320u);
}

TEST(EngineBackends, ElasticServiceBackendRunsAResizePlan) {
  // A forced resize schedule through two splits and two merges: the
  // backend must report the epoch-transition metrics and the per-epoch
  // audit gate (epochs_ok) must hold, with the union of all epochs'
  // values still gap-free (total_ops == report.total == submissions).
  engine::RunSpec spec;
  spec.backend = "service";
  spec.network = "bitonic";
  spec.width = 8;
  spec.threads = 4;
  spec.ops_per_thread = 150;
  spec.service_batch = 8;
  spec.service_elastic = true;
  spec.service_max_level = 3;
  spec.service_resize_plan = "1,2,1,0";
  const engine::RunResult res = engine::run_backend(spec);
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.metric("total_ops", -1.0), 600.0);
  EXPECT_EQ(res.metric("epochs", -1.0), 5.0);
  EXPECT_EQ(res.metric("splits", -1.0), 2.0);
  EXPECT_EQ(res.metric("merges", -1.0), 2.0);
  EXPECT_EQ(res.metric("final_level", -1.0), 0.0);
  EXPECT_EQ(res.metric("epochs_ok", -1.0), 1.0);
  EXPECT_EQ(res.metric("audit_exact", -1.0), 1.0);
  EXPECT_EQ(res.metric("audit_gap_free", -1.0), 1.0);
  ASSERT_EQ(res.trace.size(), 600u);
  std::set<std::uint64_t> values;
  for (const TokenRecord& rec : res.trace) values.insert(rec.value);
  EXPECT_EQ(values.size(), 600u);
  EXPECT_EQ(*values.rbegin(), 599u);
  // Recording mode also reports the per-epoch consistency extremes.
  EXPECT_TRUE(res.metrics.count("max_epoch_f_nl"));
  EXPECT_GE(res.metric("max_epoch_f_nl", -1.0), 0.0);
}

TEST(EngineBackends, ElasticSpecInvalidReasonsSurface) {
  engine::RunSpec spec;
  spec.backend = "service";
  spec.network = "counting_tree";  // not uniformly splittable
  spec.width = 8;
  spec.threads = 1;
  spec.ops_per_thread = 10;
  spec.service_elastic = true;
  spec.service_max_level = 1;
  const engine::RunResult tree = engine::run_backend(spec);
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.error_kind, engine::ErrorKind::kSpecInvalid);
  spec.network = "bitonic";
  spec.service_resize_plan = "1,9";  // 9 beyond max_level
  const engine::RunResult bad_plan = engine::run_backend(spec);
  EXPECT_FALSE(bad_plan.ok());
  EXPECT_EQ(bad_plan.error_kind, engine::ErrorKind::kSpecInvalid);
  spec.service_resize_plan = "1";
  spec.service_elastic = false;  // plan without elastic mode
  const engine::RunResult no_elastic = engine::run_backend(spec);
  EXPECT_FALSE(no_elastic.ok());
  EXPECT_EQ(no_elastic.error_kind, engine::ErrorKind::kSpecInvalid);
}

TEST(EngineBackends, ServiceBackendRejectsInvalidSpecs) {
  engine::RunSpec spec;
  spec.backend = "service";
  spec.network = "bitonic";
  spec.width = 8;
  spec.threads = 4;
  spec.ops_per_thread = 10;
  spec.service_shards = 0;
  EXPECT_FALSE(engine::run_backend(spec).ok());
  spec.service_shards = 2;
  spec.threads = 0;
  EXPECT_FALSE(engine::run_backend(spec).ok());
}

TEST(EngineReplay, MissingReplayPathIsSpecInvalid) {
  engine::RunSpec spec;
  spec.backend = "replay";
  const engine::RunResult no_path = engine::run_backend(spec);
  EXPECT_FALSE(no_path.ok());
  spec.replay_path = testing::TempDir() + "missing.trace";
  const engine::RunResult no_file = engine::run_backend(spec);
  EXPECT_FALSE(no_file.ok());
}

/// The committed golden fixture (a recorded three-wave adversary trace —
/// the paper's F_nl = F_nsc = 1/3 witness on bitonic(8)) replayed through
/// the engine must reproduce the counts hardcoded here: a format break
/// shows up as a read error or different counts, not a silent drift.
TEST(EngineReplay, GoldenTraceReplaysWithKnownCounts) {
  engine::RunSpec spec;
  spec.backend = "replay";
  spec.replay_path = std::string(CN_TESTDATA_DIR) + "/golden.trace";
  const engine::RunResult res = engine::run_backend(spec);
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.report.total, 12u);
  EXPECT_EQ(res.report.non_linearizable.size(), 4u);
  EXPECT_EQ(res.report.non_sequentially_consistent.size(), 4u);
  EXPECT_DOUBLE_EQ(res.report.f_nl, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(res.report.f_nsc, 1.0 / 3.0);
}

TEST(EngineResults, JsonShapes) {
  engine::RunSpec spec;
  spec.network = "bitonic";
  spec.width = 4;
  spec.processes = 4;
  spec.ops_per_process = 2;
  const engine::RunResult res = engine::run_backend(spec);
  ASSERT_TRUE(res.ok()) << res.error;
  const std::string j = engine::to_json(res);
  EXPECT_NE(j.find("\"backend\":\"simulator\""), std::string::npos);
  EXPECT_NE(j.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(j.find("\"tokens\":8"), std::string::npos);
  EXPECT_EQ(engine::describe(spec), "simulator on bitonic(4)");
}

}  // namespace
