// Experiment engine: registry coverage, backend parity with the direct
// pipeline, sweep determinism across thread counts, and error surfacing
// (failed trials must be counted, not silently folded into `trials`).
#include <gtest/gtest.h>

#include <set>

#include "core/constructions.hpp"
#include "engine/engine.hpp"
#include "sim/consistency.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace {

using namespace cn;

TEST(EngineRegistry, BuiltinsRegistered) {
  const std::set<std::string> expected = {
      "simulator", "sim_burst",      "sim_heterogeneous", "wave",
      "optimizer", "msg",            "concurrent",        "fetch_inc",
      "mcs",       "combining_tree", "diffracting_tree"};
  const std::vector<std::string> names = engine::backend_names();
  const std::set<std::string> have(names.begin(), names.end());
  for (const std::string& key : expected) {
    EXPECT_TRUE(have.count(key)) << "missing backend: " << key;
    const engine::TraceSource* src = engine::find_backend(key);
    ASSERT_NE(src, nullptr);
    EXPECT_EQ(src->name(), key);
    EXPECT_FALSE(src->description().empty());
  }
  EXPECT_EQ(engine::find_backend("no_such_backend"), nullptr);
}

TEST(EngineRegistry, UnknownBackendIsAnErrorResult) {
  engine::RunSpec spec;
  spec.backend = "no_such_backend";
  const engine::RunResult res = engine::run_backend(spec);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.error.find("no_such_backend"), std::string::npos);
}

// The simulator backend must be a pure repackaging of the direct
// generate_workload -> simulate -> analyze pipeline: same seed, same
// trace, same report.
TEST(EngineBackends, SimulatorParityWithDirectPipeline) {
  const Network net = make_bitonic(8);

  engine::RunSpec spec;
  spec.net = &net;
  spec.processes = 6;
  spec.ops_per_process = 5;
  spec.c_min = 1.0;
  spec.c_max = 2.75;
  spec.local_delay_min = 0.5;
  spec.seed = 0xD1CE;
  const engine::RunResult res = engine::run_backend(spec);
  ASSERT_TRUE(res.ok()) << res.error;

  WorkloadSpec wl;
  wl.processes = 6;
  wl.tokens_per_process = 5;
  wl.c_min = 1.0;
  wl.c_max = 2.75;
  wl.local_delay_min = 0.5;
  wl.local_delay_max = 0.5 + 2.0;  // RunSpec default: local_delay_min + 2
  Xoshiro256 rng(0xD1CE);
  const TimedExecution exec = generate_workload(net, wl, rng);
  const SimulationResult sim = simulate(exec);
  ASSERT_TRUE(sim.ok());
  const ConsistencyReport direct = analyze(sim.trace);

  ASSERT_EQ(res.trace.size(), sim.trace.size());
  for (std::size_t i = 0; i < sim.trace.size(); ++i) {
    EXPECT_EQ(res.trace[i].token, sim.trace[i].token);
    EXPECT_EQ(res.trace[i].process, sim.trace[i].process);
    EXPECT_EQ(res.trace[i].value, sim.trace[i].value);
    EXPECT_DOUBLE_EQ(res.trace[i].t_in, sim.trace[i].t_in);
    EXPECT_DOUBLE_EQ(res.trace[i].t_out, sim.trace[i].t_out);
  }
  EXPECT_EQ(res.report.non_linearizable, direct.non_linearizable);
  EXPECT_EQ(res.report.non_sequentially_consistent,
            direct.non_sequentially_consistent);
  EXPECT_DOUBLE_EQ(res.report.f_nl, direct.f_nl);
  EXPECT_DOUBLE_EQ(res.report.f_nsc, direct.f_nsc);
}

// Named-network resolution must agree with passing the network in.
TEST(EngineBackends, NamedNetworkMatchesExplicitNetwork) {
  engine::RunSpec by_name;
  by_name.network = "periodic";
  by_name.width = 8;
  by_name.seed = 17;

  const Network net = make_periodic(8);
  engine::RunSpec by_ptr = by_name;
  by_ptr.net = &net;

  const engine::RunResult a = engine::run_backend(by_name);
  const engine::RunResult b = engine::run_backend(by_ptr);
  ASSERT_TRUE(a.ok()) << a.error;
  ASSERT_TRUE(b.ok()) << b.error;
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].value, b.trace[i].value);
    EXPECT_DOUBLE_EQ(a.trace[i].t_out, b.trace[i].t_out);
  }
}

TEST(EngineBackends, WaveBackendReportsSplitMetrics) {
  engine::RunSpec spec;
  spec.backend = "wave";
  spec.network = "bitonic";
  spec.width = 8;
  spec.ell = 1;
  const engine::RunResult res = engine::run_backend(spec);
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_GT(res.metric("required_ratio"), 1.0);
  EXPECT_GT(res.metric("ratio_used"), res.metric("required_ratio") - 1e-9);
  EXPECT_GT(res.metric("wave1_size"), 0.0);
  // The three-wave execution is the paper's F_nl = F_nsc = 1/3 witness.
  EXPECT_GT(res.report.f_nl, 0.0);
  EXPECT_GT(res.report.f_nsc, 0.0);
}

TEST(EngineSweep, TrialSeedIsPureAndSpread) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t t = 0; t < 256; ++t) {
    const std::uint64_t s = engine::trial_seed(42, t);
    EXPECT_EQ(s, engine::trial_seed(42, t));  // pure function of (base, t)
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 256u);                        // no collisions
  EXPECT_NE(engine::trial_seed(42, 0), engine::trial_seed(43, 0));
}

// The acceptance criterion: aggregates (and the formatted report built
// from them) must be byte-identical at any sweeper thread count.
TEST(EngineSweep, DeterministicAcrossThreadCounts) {
  engine::SweepSpec sweep;
  sweep.base.network = "bitonic";
  sweep.base.width = 8;
  sweep.base.c_max = 3.0;  // past the ratio-2 bound so violations occur
  sweep.base.seed = 0xFEED;
  sweep.trials = 96;

  sweep.threads = 1;
  const engine::SweepStats one = engine::sweep_stats(sweep);
  sweep.threads = 2;
  const engine::SweepStats two = engine::sweep_stats(sweep);
  sweep.threads = 8;
  const engine::SweepStats eight = engine::sweep_stats(sweep);

  for (const engine::SweepStats* s : {&two, &eight}) {
    EXPECT_EQ(s->trials, one.trials);
    EXPECT_EQ(s->completed, one.completed);
    EXPECT_EQ(s->errors, one.errors);
    EXPECT_EQ(s->lin_violations, one.lin_violations);
    EXPECT_EQ(s->sc_violations, one.sc_violations);
    EXPECT_EQ(s->worst_f_nl, one.worst_f_nl);    // exact, not approximate
    EXPECT_EQ(s->worst_f_nsc, one.worst_f_nsc);
    EXPECT_EQ(s->total_tokens, one.total_tokens);
    EXPECT_EQ(s->metric_sums, one.metric_sums);  // summed in trial order
    EXPECT_EQ(engine::format_report(sweep.base, *s),
              engine::format_report(sweep.base, one));
    EXPECT_EQ(engine::to_json(*s), engine::to_json(one));
  }
  EXPECT_EQ(one.completed, one.trials);
  EXPECT_GT(one.total_tokens, 0u);
}

// keep_results returns per-trial results in trial order, matching a
// direct run with the derived seed.
TEST(EngineSweep, KeepResultsMatchesDirectRuns) {
  engine::SweepSpec sweep;
  sweep.base.network = "bitonic";
  sweep.base.width = 4;
  sweep.base.processes = 4;
  sweep.base.ops_per_process = 2;
  sweep.base.seed = 99;
  sweep.trials = 5;
  sweep.threads = 3;
  sweep.keep_results = true;
  const engine::SweepOutcome out = engine::sweep(sweep);
  ASSERT_EQ(out.results.size(), 5u);
  for (std::uint64_t t = 0; t < 5; ++t) {
    engine::RunSpec direct = sweep.base;
    direct.seed = engine::trial_seed(99, t);
    const engine::RunResult ref = engine::run_backend(direct);
    ASSERT_TRUE(out.results[t].ok());
    ASSERT_EQ(out.results[t].trace.size(), ref.trace.size());
    for (std::size_t i = 0; i < ref.trace.size(); ++i) {
      EXPECT_EQ(out.results[t].trace[i].value, ref.trace[i].value);
    }
  }
}

// The old bench loop silently dropped failed simulations while still
// counting them toward `trials`. Failures must now be surfaced.
TEST(EngineSweep, ErrorsAreCountedAndFirstErrorPropagates) {
  engine::SweepSpec sweep;
  sweep.base.network = "bitonic";
  sweep.base.width = 6;  // not a power of two: every trial fails
  sweep.trials = 7;
  sweep.threads = 4;
  const engine::SweepStats stats = engine::sweep_stats(sweep);
  EXPECT_EQ(stats.trials, 7u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.errors, 7u);
  EXPECT_FALSE(stats.first_error.empty());
  EXPECT_EQ(stats.total_tokens, 0u);
  // The taxonomy classifies all of them as spec_invalid, and the entry
  // of the lowest-index failed trial carries the first_error message.
  ASSERT_EQ(stats.error_table.count("spec_invalid"), 1u);
  EXPECT_EQ(stats.error_table.at("spec_invalid").count, 7u);
  EXPECT_EQ(stats.error_table.at("spec_invalid").first_trial, 0u);
  EXPECT_EQ(stats.error_table.at("spec_invalid").first_message,
            stats.first_error);
  // And the human-readable report carries them.
  const std::string report = engine::format_report(sweep.base, stats);
  EXPECT_NE(report.find("first error:"), std::string::npos);
  EXPECT_NE(report.find("spec_invalid"), std::string::npos);
  EXPECT_NE(engine::to_json(stats).find("first_error"), std::string::npos);
  EXPECT_NE(engine::to_json(stats).find("error_table"), std::string::npos);
}

// A clean sweep must not grow new JSON fields: the taxonomy and retry
// counters appear only when something went wrong.
TEST(EngineSweep, CleanSweepJsonIsUnchangedByTheTaxonomy) {
  engine::SweepSpec sweep;
  sweep.base.network = "bitonic";
  sweep.base.width = 4;
  sweep.base.processes = 4;
  sweep.base.ops_per_process = 2;
  sweep.trials = 4;
  const engine::SweepStats stats = engine::sweep_stats(sweep);
  ASSERT_EQ(stats.errors, 0u);
  const std::string j = engine::to_json(stats);
  EXPECT_EQ(j.find("error_table"), std::string::npos);
  EXPECT_EQ(j.find("retried_trials"), std::string::npos);
  EXPECT_EQ(j.find("fault"), std::string::npos);
}

TEST(EngineResults, JsonShapes) {
  engine::RunSpec spec;
  spec.network = "bitonic";
  spec.width = 4;
  spec.processes = 4;
  spec.ops_per_process = 2;
  const engine::RunResult res = engine::run_backend(spec);
  ASSERT_TRUE(res.ok()) << res.error;
  const std::string j = engine::to_json(res);
  EXPECT_NE(j.find("\"backend\":\"simulator\""), std::string::npos);
  EXPECT_NE(j.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(j.find("\"tokens\":8"), std::string::npos);
  EXPECT_EQ(engine::describe(spec), "simulator on bitonic(4)");
}

}  // namespace
