// Tests for valency and split-structure analysis (core/valency),
// reproducing Propositions 5.6-5.10 as executable checks.
#include <gtest/gtest.h>

#include "core/constructions.hpp"
#include "core/valency.hpp"
#include "util/bits.hpp"

namespace cn {
namespace {

std::uint32_t lg(std::uint32_t w) { return log2_exact(w); }

// ------------------------------------------------------------- sink sets

TEST(SinkSet, BasicOperations) {
  SinkSet a{0b0011};  // {0, 1}
  SinkSet b{0b1100};  // {2, 3}
  SinkSet c{0b0110};  // {1, 2}
  EXPECT_EQ(sinkset_count(a), 2u);
  EXPECT_EQ(sinkset_min(a), 0u);
  EXPECT_EQ(sinkset_max(a), 1u);
  EXPECT_TRUE(sinkset_precedes(a, b));
  EXPECT_FALSE(sinkset_precedes(b, a));
  EXPECT_FALSE(sinkset_precedes(a, c));
  EXPECT_TRUE(sinkset_intersects(a, c));
  EXPECT_FALSE(sinkset_intersects(a, b));
  EXPECT_TRUE(sinkset_subset(a, SinkSet{0b1011}));
  EXPECT_FALSE(sinkset_subset(SinkSet{0b1011}, a));
}

TEST(SinkSet, MultiWord) {
  SinkSet a{0, 1ull << 5};  // {69}
  EXPECT_EQ(sinkset_count(a), 1u);
  EXPECT_EQ(sinkset_min(a), 69u);
  EXPECT_EQ(sinkset_max(a), 69u);
  SinkSet b{1ull << 63, 0};  // {63}
  EXPECT_TRUE(sinkset_precedes(b, a));
}

TEST(SinkSet, EmptySetConventions) {
  SinkSet e{0};
  EXPECT_EQ(sinkset_count(e), 0u);
  EXPECT_TRUE(sinkset_precedes(e, SinkSet{0b1}));
  EXPECT_TRUE(sinkset_precedes(SinkSet{0b1}, e));
}

// ------------------------------------------------------------- valencies

TEST(Valency, LastLayerBalancersAreTotallyOrdering) {
  const Network net = make_bitonic(8);
  const auto val = output_valencies(net);
  for (const NodeIndex b : net.layer(net.depth())) {
    EXPECT_TRUE(is_univalent(val[b]));
    EXPECT_TRUE(is_totally_ordering(val[b]));
  }
}

TEST(Valency, FirstLayerBitonicIsNotUnivalent) {
  const Network net = make_bitonic(8);
  const auto val = output_valencies(net);
  for (const NodeIndex b : net.layer(1)) {
    EXPECT_FALSE(is_univalent(val[b]));
    EXPECT_FALSE(is_totally_ordering(val[b]));
  }
}

TEST(Valency, CountingTreeIsUnivalentButNotTotallyOrdering) {
  // Every toggle splits sinks by one address bit: disjoint (univalent)
  // but interleaved, never ≺-ordered (except the leaf layer).
  const Network net = make_counting_tree(8);
  const auto val = output_valencies(net);
  for (std::uint32_t ell = 1; ell <= net.depth(); ++ell) {
    for (const NodeIndex b : net.layer(ell)) {
      EXPECT_TRUE(is_univalent(val[b])) << "layer " << ell;
      if (ell < net.depth()) {
        EXPECT_FALSE(is_totally_ordering(val[b])) << "layer " << ell;
      } else {
        EXPECT_TRUE(is_totally_ordering(val[b]));
      }
    }
  }
}

// -------------------------------------------------- split depth / number

TEST(Split, BitonicSplitDepthMatchesProposition56) {
  // sd(B(w)) = (lg^2 w - lg w + 2) / 2, complete, uniformly splittable.
  for (const std::uint32_t w : {4u, 8u, 16u, 32u}) {
    const SplitAnalysis sa(make_bitonic(w));
    ASSERT_TRUE(sa.applicable()) << "w=" << w;
    EXPECT_EQ(sa.split_depth(), (lg(w) * lg(w) - lg(w) + 2) / 2) << "w=" << w;
    EXPECT_TRUE(sa.levels()[0].complete);
    EXPECT_TRUE(sa.levels()[0].uniformly_splittable);
  }
}

TEST(Split, PeriodicSplitDepthMatchesProposition58) {
  // sd(P(w)) = lg^2 w - lg w + 1, complete, uniformly splittable.
  for (const std::uint32_t w : {4u, 8u, 16u, 32u}) {
    const SplitAnalysis sa(make_periodic(w));
    ASSERT_TRUE(sa.applicable()) << "w=" << w;
    EXPECT_EQ(sa.split_depth(), lg(w) * lg(w) - lg(w) + 1) << "w=" << w;
    EXPECT_TRUE(sa.levels()[0].complete);
    EXPECT_TRUE(sa.levels()[0].uniformly_splittable);
  }
}

TEST(Split, BitonicSplitNumberMatchesProposition59) {
  // sp(B(w)) = lg w; continuously complete and uniformly splittable.
  for (const std::uint32_t w : {4u, 8u, 16u, 32u}) {
    const SplitAnalysis sa(make_bitonic(w));
    ASSERT_TRUE(sa.applicable());
    EXPECT_EQ(sa.split_number(), lg(w)) << "w=" << w;
    EXPECT_TRUE(sa.continuously_complete()) << "w=" << w;
    EXPECT_TRUE(sa.continuously_uniformly_splittable()) << "w=" << w;
  }
}

TEST(Split, PeriodicSplitNumberMatchesProposition510) {
  // sp(P(w)) = lg w; continuously complete and uniformly splittable.
  for (const std::uint32_t w : {4u, 8u, 16u, 32u}) {
    const SplitAnalysis sa(make_periodic(w));
    ASSERT_TRUE(sa.applicable());
    EXPECT_EQ(sa.split_number(), lg(w)) << "w=" << w;
    EXPECT_TRUE(sa.continuously_complete()) << "w=" << w;
    EXPECT_TRUE(sa.continuously_uniformly_splittable()) << "w=" << w;
  }
}

TEST(Split, RaceDepthDecreasesByOnePerLevel) {
  // For B(w) and P(w): race_depth(ℓ) = lg w - ℓ + 1 (see valency.hpp note:
  // this is the quantity Theorem 5.11 writes d(S^(ℓ))); the last level
  // races over the final wire only.
  for (const std::uint32_t w : {4u, 8u, 16u}) {
    for (const Network& net : {make_bitonic(w), make_periodic(w)}) {
      const SplitAnalysis sa(net);
      ASSERT_TRUE(sa.applicable());
      for (std::uint32_t ell = 1; ell <= sa.split_number(); ++ell) {
        EXPECT_EQ(sa.race_depth(ell), lg(w) - ell + 1)
            << net.name() << " ell=" << ell;
      }
      EXPECT_EQ(sa.race_depth(sa.split_number()), 1u);
    }
  }
}

TEST(Split, CountingTreeSplitsOnlyAtLeavesAndIsNotComplete) {
  // The tree's toggles interleave sink parities, so no layer before the
  // leaf layer is totally ordering; the leaf layer is, but its balancers
  // cover only two sinks each, so the tree is not complete and
  // Theorem 5.11's hypotheses do not apply to it.
  const Network net = make_counting_tree(8);
  const SplitAnalysis sa(net);
  ASSERT_TRUE(sa.applicable());
  EXPECT_EQ(sa.split_number(), 1u);
  EXPECT_EQ(sa.split_depth(), net.depth());
  EXPECT_FALSE(sa.levels()[0].complete);
  EXPECT_FALSE(sa.continuously_complete());
}

TEST(Split, SingleBalancerIsItsOwnSplitLayer) {
  const SplitAnalysis sa(make_single_balancer(2, 2));
  ASSERT_TRUE(sa.applicable());
  EXPECT_EQ(sa.split_number(), 1u);
  EXPECT_EQ(sa.split_depth(), 1u);
  EXPECT_EQ(sa.race_depth(1), 1u);
}

TEST(Split, WideNetworksMatchFormulasAcrossBitsetWords) {
  // w = 128 spans two 64-bit sink-set words; the closed forms must still
  // hold (exercises every multi-word SinkSet path).
  const SplitAnalysis sb(make_bitonic(128));
  ASSERT_TRUE(sb.applicable());
  EXPECT_EQ(sb.split_depth(), (7u * 7u - 7u + 2u) / 2u);  // = 22
  EXPECT_EQ(sb.split_number(), 7u);
  EXPECT_TRUE(sb.continuously_complete());
  const SplitAnalysis sp(make_periodic(128));
  ASSERT_TRUE(sp.applicable());
  EXPECT_EQ(sp.split_depth(), 7u * 7u - 7u + 1u);  // = 43
  EXPECT_EQ(sp.split_number(), 7u);
}

TEST(Split, SplitLayerSinksHalveEachLevel) {
  const std::uint32_t w = 16;
  const SplitAnalysis sa(make_bitonic(w));
  ASSERT_TRUE(sa.applicable());
  std::uint32_t expect = w;
  for (const SplitLevel& level : sa.levels()) {
    EXPECT_EQ(sinkset_count(level.sinks), expect);
    expect /= 2;
  }
}

TEST(Split, BottomSubnetworkServesTopIndices) {
  // SP2 chains keep the *highest* sink indices (Val(1) ≻ Val(0)).
  const std::uint32_t w = 8;
  const SplitAnalysis sa(make_bitonic(w));
  ASSERT_TRUE(sa.applicable());
  for (std::size_t k = 0; k < sa.levels().size(); ++k) {
    const SplitLevel& level = sa.levels()[k];
    EXPECT_EQ(sinkset_max(level.sinks), w - 1);
    EXPECT_EQ(sinkset_min(level.sinks), w - (w >> k));
  }
}

}  // namespace
}  // namespace cn
