// Tests reconstructing the paper's adversarial executions:
// Proposition 5.3 (three waves on the bitonic network), Theorem 5.11
// (general split level on bitonic and periodic), Corollaries 5.12/5.13
// (ℓ = lg w), and the Theorem 3.2 insertion transform.
#include <gtest/gtest.h>

#include <cmath>

#include "core/constructions.hpp"
#include "core/valency.hpp"
#include "sim/adversary.hpp"
#include "sim/simulator.hpp"
#include "util/bits.hpp"

namespace cn {
namespace {

std::uint32_t lg(std::uint32_t w) { return log2_exact(w); }

// ----------------------------------------------------- Proposition 5.3

TEST(Proposition53, BitonicThreeWavesGiveOneThirdFractions) {
  // ℓ = 1 on B(w) with ratio just above (lg w + 3)/2: both inconsistency
  // fractions are exactly 1/3 in the constructed execution.
  for (const std::uint32_t w : {4u, 8u, 16u, 32u}) {
    const Network net = make_bitonic(w);
    const SplitAnalysis split(net);
    const WaveResult res = run_wave_execution(net, split, {.ell = 1});
    ASSERT_TRUE(res.ok()) << res.error;
    // Required ratio = 1 + d / lg w = (lg w + 3)/2 (paper's threshold).
    EXPECT_DOUBLE_EQ(res.required_ratio, (lg(w) + 3.0) / 2.0) << "w=" << w;
    EXPECT_EQ(res.wave1_size, w / 2);
    EXPECT_EQ(res.wave2_size, w / 2);
    // All w/2 wave-3 tokens are non-linearizable AND non-SC: both
    // fractions are (w/2) / (3w/2) = 1/3.
    EXPECT_NEAR(res.report.f_nl, 1.0 / 3.0, 1e-12) << "w=" << w;
    EXPECT_NEAR(res.report.f_nsc, 1.0 / 3.0, 1e-12) << "w=" << w;
  }
}

TEST(Proposition53, WaveExecutionSatisfiesItsTimingEnvelope) {
  const Network net = make_bitonic(8);
  const SplitAnalysis split(net);
  const WaveResult res = run_wave_execution(net, split, {.ell = 1});
  ASSERT_TRUE(res.ok()) << res.error;
  // Every wire delay is c_min or c_max, and the achieved ratio exceeds
  // the threshold.
  EXPECT_GT(res.timing.ratio(), res.required_ratio);
  EXPECT_NEAR(res.timing.c_min, 1.0, 1e-9);  // floating-point subtraction noise
}

// -------------------------------------------------------- Theorem 5.11

class Theorem511Test
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint32_t>> {
 protected:
  Network build() const {
    const auto [kind, w] = GetParam();
    return std::string(kind) == "bitonic" ? make_bitonic(w) : make_periodic(w);
  }
};

TEST_P(Theorem511Test, FractionsMatchPredictionAtEverySplitLevel) {
  const Network net = build();
  const SplitAnalysis split(net);
  ASSERT_TRUE(split.applicable());
  for (std::uint32_t ell = 1; ell <= split.split_number(); ++ell) {
    const WaveResult res = run_wave_execution(net, split, {.ell = ell});
    ASSERT_TRUE(res.ok()) << net.name() << " ell=" << ell << ": " << res.error;
    // Theorem 5.11 gives LOWER bounds; the constructed execution achieves
    // them exactly.
    EXPECT_NEAR(res.report.f_nl, res.predicted_f_nl, 1e-12)
        << net.name() << " ell=" << ell;
    EXPECT_NEAR(res.report.f_nsc, res.predicted_f_nsc, 1e-12)
        << net.name() << " ell=" << ell;
    // Required ratio grows with ell (deeper splits need more asynchrony).
    EXPECT_DOUBLE_EQ(
        res.required_ratio,
        1.0 + static_cast<double>(net.depth()) / (lg(net.fan_out()) - ell + 1));
  }
}

TEST_P(Theorem511Test, WaveValuesAreExactlyAsInTheProof) {
  // Wave 2 gets values w(1 - 2^-ℓ) .. w-1; wave 3 gets 0 .. w(1-2^-ℓ)-1.
  const Network net = build();
  const std::uint32_t w = net.fan_out();
  const SplitAnalysis split(net);
  for (std::uint32_t ell = 1; ell <= split.split_number(); ++ell) {
    const WaveResult res = run_wave_execution(net, split, {.ell = ell});
    ASSERT_TRUE(res.ok()) << res.error;
    const std::uint32_t w1 = res.wave1_size;
    std::vector<Value> wave2, wave3, wave1;
    for (const TokenRecord& r : res.trace) {
      if (r.token < w1) {
        wave1.push_back(r.value);
      } else if (r.token < w1 + res.wave2_size) {
        wave2.push_back(r.value);
      } else {
        wave3.push_back(r.value);
      }
    }
    std::sort(wave1.begin(), wave1.end());
    std::sort(wave2.begin(), wave2.end());
    std::sort(wave3.begin(), wave3.end());
    for (std::size_t i = 0; i < wave2.size(); ++i) {
      EXPECT_EQ(wave2[i], w1 + i) << net.name() << " ell=" << ell;
    }
    for (std::size_t i = 0; i < wave3.size(); ++i) {
      EXPECT_EQ(wave3[i], i) << net.name() << " ell=" << ell;
    }
    // Wave 1 is overtaken: its values start at w.
    for (std::size_t i = 0; i < wave1.size(); ++i) {
      EXPECT_EQ(wave1[i], w + i) << net.name() << " ell=" << ell;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Networks, Theorem511Test,
    ::testing::Combine(::testing::Values("bitonic", "periodic"),
                       ::testing::Values(4u, 8u, 16u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Theorem511, WideNetworkSpotCheck) {
  const Network net = make_bitonic(64);
  const SplitAnalysis split(net);
  const WaveResult res = run_wave_execution(net, split, {.ell = 3});
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_NEAR(res.report.f_nl, res.predicted_f_nl, 1e-12);
  EXPECT_NEAR(res.report.f_nsc, res.predicted_f_nsc, 1e-12);
}

TEST(Theorem32, WorksOnPeriodicNetwork) {
  const Network net = make_periodic(8);
  const SplitAnalysis split(net);
  const WaveResult base =
      run_wave_execution(net, split, {.ell = 2, .distinct_processes = true});
  ASSERT_TRUE(base.ok()) << base.error;
  const Theorem32Result res = run_theorem32_transform(net, base.exec);
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_FALSE(res.transformed_report.sequentially_consistent());
  EXPECT_EQ(res.inserted_per_wire, 1u);
}

// ------------------------------------------- Corollaries 5.12 and 5.13

TEST(Corollary512, DeepestLevelFractionsForBitonic) {
  for (const std::uint32_t w : {4u, 8u, 16u}) {
    const Network net = make_bitonic(w);
    const SplitAnalysis split(net);
    const WaveResult res =
        run_wave_execution(net, split, {.ell = split.split_number()});
    ASSERT_TRUE(res.ok()) << res.error;
    // Ratio threshold 1 + lg w (lg w + 1)/2 = 1 + d(B(w)).
    EXPECT_DOUBLE_EQ(res.required_ratio, 1.0 + net.depth());
    EXPECT_NEAR(res.report.f_nl, (w - 1.0) / (2.0 * w - 1.0), 1e-12);
    EXPECT_NEAR(res.report.f_nsc, 1.0 / (2.0 * w - 1.0), 1e-12);
  }
}

TEST(Corollary513, DeepestLevelFractionsForPeriodic) {
  for (const std::uint32_t w : {4u, 8u, 16u}) {
    const Network net = make_periodic(w);
    const SplitAnalysis split(net);
    const WaveResult res =
        run_wave_execution(net, split, {.ell = split.split_number()});
    ASSERT_TRUE(res.ok()) << res.error;
    // Ratio threshold 1 + lg^2 w = 1 + d(P(w)).
    EXPECT_DOUBLE_EQ(res.required_ratio, 1.0 + net.depth());
    EXPECT_NEAR(res.report.f_nl, (w - 1.0) / (2.0 * w - 1.0), 1e-12);
    EXPECT_NEAR(res.report.f_nsc, 1.0 / (2.0 * w - 1.0), 1e-12);
  }
}

// ------------------------------------------------------- guard clauses

TEST(WaveExecution, InsufficientExplicitRatioProducesNoViolation) {
  // An explicit c_max below the threshold is allowed (the Theorem 4.1
  // sweep uses it); the attack simply fails: wave 3 cannot overtake
  // wave 1, so the execution is both linearizable and SC.
  const Network net = make_bitonic(8);
  const SplitAnalysis split(net);
  WaveSpec spec;
  spec.ell = 1;
  spec.c_min = 1.0;
  spec.c_max = 2.0;  // below the (lg 8 + 3)/2 = 3 threshold
  const WaveResult res = run_wave_execution(net, split, spec);
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_TRUE(res.report.linearizable());
  EXPECT_TRUE(res.report.sequentially_consistent());
}

TEST(WaveExecution, AutoChosenRatioRequiresThreshold) {
  // With c_max unset the construction promises a violation, so a c_min
  // that cannot be exceeded... is impossible; instead check the guard via
  // wave3_extra_delay pushing past the race budget with auto ratio: the
  // auto ratio still violates (delay is not part of the ratio check).
  const Network net = make_bitonic(8);
  const SplitAnalysis split(net);
  const WaveResult res = run_wave_execution(net, split, {.ell = 1});
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res.report.sequentially_consistent());
}

TEST(WaveExecution, RejectsOutOfRangeLevel) {
  const Network net = make_bitonic(8);
  const SplitAnalysis split(net);
  EXPECT_FALSE(run_wave_execution(net, split, {.ell = 0}).ok());
  EXPECT_FALSE(
      run_wave_execution(net, split, {.ell = split.split_number() + 1}).ok());
}

TEST(WaveExecution, RejectsCountingTree) {
  const Network net = make_counting_tree(8);
  const SplitAnalysis split(net);
  const WaveResult res = run_wave_execution(net, split, {.ell = 1});
  EXPECT_FALSE(res.ok());
}

TEST(WaveExecution, DistinctProcessVariantIsSCButNotLinearizable) {
  const Network net = make_bitonic(8);
  const SplitAnalysis split(net);
  const WaveResult res =
      run_wave_execution(net, split, {.ell = 1, .distinct_processes = true});
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_FALSE(res.report.linearizable());
  EXPECT_TRUE(res.report.sequentially_consistent());
}

// -------------------------------------------------------- Theorem 3.2

TEST(Theorem32, TransformProducesNonSCExecutionOnBitonic) {
  for (const std::uint32_t w : {4u, 8u, 16u}) {
    const Network net = make_bitonic(w);
    const SplitAnalysis split(net);
    const WaveResult base =
        run_wave_execution(net, split, {.ell = 1, .distinct_processes = true});
    ASSERT_TRUE(base.ok()) << base.error;
    const Theorem32Result res = run_theorem32_transform(net, base.exec);
    ASSERT_TRUE(res.ok()) << "w=" << w << ": " << res.error;
    // Base: non-linearizable yet SC. Transformed: non-SC.
    EXPECT_FALSE(res.base_report.linearizable());
    EXPECT_TRUE(res.base_report.sequentially_consistent());
    EXPECT_FALSE(res.transformed_report.sequentially_consistent());
  }
}

TEST(Theorem32, TransformPreservesTheTimingCondition) {
  const Network net = make_bitonic(8);
  const SplitAnalysis split(net);
  const WaveResult base =
      run_wave_execution(net, split, {.ell = 1, .distinct_processes = true});
  ASSERT_TRUE(base.ok());
  const Theorem32Result res = run_theorem32_transform(net, base.exec);
  ASSERT_TRUE(res.ok()) << res.error;
  // Same wire-delay envelope...
  EXPECT_GE(res.transformed_timing.c_min, res.base_timing.c_min - 1e-12);
  EXPECT_LE(res.transformed_timing.c_max, res.base_timing.c_max + 1e-12);
  // ...and the global delay did not shrink (the inserted wave rides inside
  // T''s interval, so it creates no new tighter non-overlapping pair).
  if (res.base_timing.C_g && res.transformed_timing.C_g) {
    EXPECT_GE(*res.transformed_timing.C_g, *res.base_timing.C_g - 1e-12);
  }
}

TEST(Theorem32, InsertedTokenBelongsToWitnessProcessAndGetsSmallValue) {
  const Network net = make_bitonic(8);
  const SplitAnalysis split(net);
  const WaveResult base =
      run_wave_execution(net, split, {.ell = 1, .distinct_processes = true});
  ASSERT_TRUE(base.ok());
  const Theorem32Result res = run_theorem32_transform(net, base.exec);
  ASSERT_TRUE(res.ok()) << res.error;
  // The inserted token is among the flagged non-SC tokens.
  const auto& flagged = res.transformed_report.non_sequentially_consistent;
  EXPECT_NE(std::find(flagged.begin(), flagged.end(), res.inserted_token),
            flagged.end());
  // Regular network: exactly one token per input wire was inserted.
  EXPECT_EQ(res.inserted_per_wire, 1u);
}

TEST(Theorem32, RegularNetworksNeedOneTokenPerWire) {
  // The LCM multiplier is 1 for the regular constructions and w for the
  // counting tree (fan-in 1, (1,2) toggles at every level).
  const Network bitonic = make_bitonic(8);
  const SplitAnalysis split(bitonic);
  const WaveResult base = run_wave_execution(bitonic, split,
                                             {.ell = 1, .distinct_processes = true});
  ASSERT_TRUE(base.ok());
  const Theorem32Result res = run_theorem32_transform(bitonic, base.exec);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.inserted_per_wire, 1u);
}

TEST(Theorem32, WorksOnTheCountingTreeWithLcmWave) {
  // The tree's (1,2) toggles need the LCM-scaled wave: w tokens on the
  // single input wire so every level receives a multiple of 2.
  const Network net = make_counting_tree(4);
  Xoshiro256 rng(0x32);
  const TimedExecution base =
      find_nonlinearizable_sc_execution(net, 1.0, 3.0, 50'000, rng);
  ASSERT_FALSE(base.plans.empty()) << "no base execution found";
  const Theorem32Result res = run_theorem32_transform(net, base);
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.inserted_per_wire, 4u);  // = w on the one input wire
  EXPECT_TRUE(res.base_report.sequentially_consistent());
  EXPECT_FALSE(res.transformed_report.sequentially_consistent());
  EXPECT_LE(res.transformed_timing.c_max, res.base_timing.c_max + 1e-9);
  EXPECT_GE(res.transformed_timing.c_min, res.base_timing.c_min - 1e-9);
}

TEST(Theorem32, FinderReturnsQualifyingExecutions) {
  const Network net = make_counting_tree(8);
  Xoshiro256 rng(99);
  const TimedExecution exec =
      find_nonlinearizable_sc_execution(net, 1.0, 3.0, 50'000, rng);
  ASSERT_FALSE(exec.plans.empty());
  const SimulationResult sim = simulate(exec);
  ASSERT_TRUE(sim.ok());
  const ConsistencyReport rep = analyze(sim.trace);
  EXPECT_FALSE(rep.linearizable());
  EXPECT_TRUE(rep.sequentially_consistent());
}

TEST(Theorem32, FinderGivesUpGracefully) {
  // At ratio 1 (synchronous), no inversion is possible: empty result.
  const Network net = make_bitonic(4);
  Xoshiro256 rng(1);
  const TimedExecution exec =
      find_nonlinearizable_sc_execution(net, 1.0, 1.0, 200, rng);
  EXPECT_TRUE(exec.plans.empty());
}

TEST(Theorem32, RejectsLinearizableBase) {
  const Network net = make_bitonic(4);
  TimedExecution exec;
  exec.net = &net;
  exec.plans.push_back(make_uniform_plan(0, 0, 0, net.depth(), 0.0, 1.0));
  const Theorem32Result res = run_theorem32_transform(net, exec);
  EXPECT_FALSE(res.ok());
}

}  // namespace
}  // namespace cn
