// Tests for the shared-memory counting-network implementation
// (src/concurrent): gap-freedom, quiescent step property, and the
// Theorem 4.1 pacing behaviour on real threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "concurrent/concurrent_network.hpp"
#include "concurrent/harness.hpp"
#include "core/constructions.hpp"
#include "core/sequential.hpp"
#include "core/verify.hpp"
#include "sim/consistency.hpp"
#include "sim/timing.hpp"

namespace cn {
namespace {

TEST(ConcurrentNetwork, SingleThreadValuesAreSequential) {
  const Network topo = make_bitonic(8);
  ConcurrentNetwork net(topo);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(net.increment(static_cast<std::uint32_t>(i % 8)), i);
  }
  EXPECT_EQ(net.total(), 100u);
}

TEST(ConcurrentNetwork, ConcurrentValuesAreGapFreeAndDistinct) {
  const Network topo = make_bitonic(8);
  ConcurrentNetwork net(topo);
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint64_t kOps = 500;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      got[t].reserve(kOps);
      for (std::uint64_t k = 0; k < kOps; ++k) {
        got[t].push_back(net.increment(t % topo.fan_in()));
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<std::uint64_t> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kThreads * kOps);
  for (std::uint64_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i) << "duplicate or gap at " << i;
  }
}

TEST(ConcurrentNetwork, QuiescentStepProperty) {
  const Network topo = make_periodic(8);
  ConcurrentNetwork net(topo);
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kOps = 101;  // deliberately not a multiple of 8
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t k = 0; k < kOps; ++k) net.increment(t % 8);
    });
  }
  for (auto& w : workers) w.join();
  const std::vector<std::uint64_t> counts = net.sink_counts();
  EXPECT_TRUE(has_step_property(counts));
  EXPECT_EQ(net.total(), kThreads * kOps);
}

TEST(ConcurrentNetwork, PerThreadValuesIncreaseWithoutContention) {
  // A single thread is trivially sequentially consistent.
  const Network topo = make_bitonic(4);
  ConcurrentNetwork net(topo);
  std::uint64_t prev = net.increment(0);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t v = net.increment(0);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(ConcurrentNetwork, WorksOverAnyTopology) {
  // The shared-memory implementation is topology-generic: tree (fan-in 1,
  // irregular balancers) and periodic network both count under threads.
  for (const Network* topo :
       {new Network(make_counting_tree(8)), new Network(make_periodic(8))}) {
    ConcurrentNetwork net(*topo);
    std::vector<std::thread> workers;
    std::vector<std::vector<std::uint64_t>> got(4);
    for (std::uint32_t t = 0; t < 4; ++t) {
      workers.emplace_back([&, t] {
        for (int k = 0; k < 200; ++k) {
          got[t].push_back(net.increment(t % topo->fan_in()));
        }
      });
    }
    for (auto& w : workers) w.join();
    std::vector<std::uint64_t> all;
    for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    for (std::uint64_t i = 0; i < all.size(); ++i) {
      ASSERT_EQ(all[i], i) << topo->name();
    }
    delete topo;
  }
}

TEST(Harness, RecordedRunProducesCompleteTrace) {
  const Network topo = make_bitonic(8);
  ConcurrentNetwork net(topo);
  ConcurrentRunSpec spec;
  spec.threads = 4;
  spec.ops_per_thread = 50;
  const ConcurrentRunResult res = run_recorded(net, spec);
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.trace.size(), 200u);
  EXPECT_GT(res.ops_per_sec, 0.0);
  // Values form 0..n-1.
  std::vector<std::uint64_t> values;
  for (const TokenRecord& r : res.trace) values.push_back(r.value);
  std::sort(values.begin(), values.end());
  for (std::uint64_t i = 0; i < values.size(); ++i) EXPECT_EQ(values[i], i);
  // Timestamps are sane: every op finishes after it starts.
  for (const TokenRecord& r : res.trace) {
    EXPECT_LE(r.t_in, r.t_out);
    EXPECT_LE(r.first_seq, r.last_seq);
  }
}

TEST(Harness, TraceFeedsConsistencyAnalyzer) {
  const Network topo = make_bitonic(8);
  ConcurrentNetwork net(topo);
  ConcurrentRunSpec spec;
  spec.threads = 4;
  spec.ops_per_thread = 100;
  const ConcurrentRunResult res = run_recorded(net, spec);
  ASSERT_TRUE(res.ok());
  const ConsistencyReport rep = analyze(res.trace);
  EXPECT_EQ(rep.total, 400u);
  // Unpaced single-host runs are in practice sequentially consistent per
  // thread (a thread's next operation starts after its previous returns,
  // and balancer traversal is monotone under low skew) — but we only
  // assert the analyzer runs and fractions are within range.
  EXPECT_GE(rep.f_nl, rep.f_nsc);
  EXPECT_LE(rep.f_nl, 1.0);
}

TEST(Harness, LocalDelayPacingKeepsGapsAboveFloor) {
  const Network topo = make_bitonic(4);
  ConcurrentNetwork net(topo);
  ConcurrentRunSpec spec;
  spec.threads = 2;
  spec.ops_per_thread = 20;
  spec.local_delay_ns = 200'000;  // 0.2 ms between ops
  const ConcurrentRunResult res = run_recorded(net, spec);
  ASSERT_TRUE(res.ok());
  // Within each thread, consecutive operations are separated by at least
  // roughly the pacing floor.
  std::map<ProcessId, std::vector<const TokenRecord*>> per;
  for (const TokenRecord& r : res.trace) per[r.process].push_back(&r);
  for (auto& [p, recs] : per) {
    std::sort(recs.begin(), recs.end(),
              [](const TokenRecord* a, const TokenRecord* b) {
                return a->first_seq < b->first_seq;
              });
    for (std::size_t i = 1; i < recs.size(); ++i) {
      const double gap = recs[i]->t_in - recs[i - 1]->t_out;
      EXPECT_GE(gap, 0.15e-3) << "process " << p << " op " << i;
    }
  }
}

TEST(Harness, RecordedScheduleMeasuresTimingParameters) {
  const Network topo = make_bitonic(4);
  ConcurrentNetwork net(topo);
  ConcurrentRunSpec spec;
  spec.threads = 2;
  spec.ops_per_thread = 25;
  spec.hop_delay_min_ns = 30'000;
  spec.hop_delay_max_ns = 120'000;
  spec.local_delay_ns = 500'000;
  spec.record_schedule = true;
  const ConcurrentRunResult res = run_recorded(net, spec);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.schedule.plans.size(), 50u);
  for (const TokenPlan& p : res.schedule.plans) {
    ASSERT_EQ(p.times.size(), topo.depth() + 1);
    for (std::size_t h = 1; h < p.times.size(); ++h) {
      EXPECT_GE(p.times[h], p.times[h - 1]);
    }
  }
  const TimingParameters t = measure_timing(res.schedule);
  // The busy-wait enforces at least the floor per hop (scheduling noise
  // only adds delay, never removes it).
  EXPECT_GE(t.c_min, 30e-6 * 0.9);
  ASSERT_TRUE(t.C_L.has_value());
  EXPECT_GE(*t.C_L, 400e-6);
}

TEST(Harness, ScheduleAbsentWhenNotRequested) {
  const Network topo = make_bitonic(4);
  ConcurrentNetwork net(topo);
  ConcurrentRunSpec spec;
  spec.threads = 2;
  spec.ops_per_thread = 5;
  const ConcurrentRunResult res = run_recorded(net, spec);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.schedule.plans.empty());
}

TEST(Harness, ThroughputRunnerCountsAllOps) {
  std::atomic<std::uint64_t> counter{0};
  const double ops = run_throughput(4, 1000, [&](std::uint32_t) {
    return counter.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_GT(ops, 0.0);
  EXPECT_EQ(counter.load(), 4000u);
}

TEST(Harness, BatchThroughputRunnerCountsAllTokens) {
  // 1000 tokens per thread in chunks of 32 leaves a short final chunk
  // (1000 = 31*32 + 8); every token must still be delivered exactly once.
  const Network topo = make_bitonic(8);
  ConcurrentNetwork net(topo);
  const double rate = run_batch_throughput(
      4, 1000, 32, [&](std::uint32_t t, std::uint64_t* out, std::uint32_t k) {
        net.increment_batch(t % 8, k, out);
      });
  EXPECT_GT(rate, 0.0);
  EXPECT_EQ(net.total(), 4000u);
  EXPECT_TRUE(has_step_property(net.sink_counts()));
}

// --- increment_batch: differential equivalence with the sequential spec ---

// Runs the same token sequence through a ConcurrentNetwork (via
// increment_batch) and through the sequential NetworkState oracle (via
// one shepherd call per token), then compares every observable: the
// multiset of issued values per batch, per-balancer traversal counts,
// per-sink counter totals, and the grand total. Equality of the balancer
// counts is the "byte-compatible counting" claim: one fetch_add(k) must
// advance each balancer exactly as far as k sequential tokens would.
void expect_batch_matches_sequential(const Network& topo,
                                     const std::vector<std::uint32_t>& batches) {
  ConcurrentNetwork net(topo);
  NetworkState spec(topo);
  TokenId token = 0;
  std::uint32_t next_source = 0;
  for (const std::uint32_t k : batches) {
    const std::uint32_t s = next_source++ % topo.fan_in();
    std::vector<std::uint64_t> got(k);
    net.increment_batch(s, k, got.data());
    std::vector<std::uint64_t> expect;
    expect.reserve(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      expect.push_back(spec.shepherd(token++, 0, s));
    }
    // The batch hands out exactly the values the k sequential tokens
    // receive; the depth-first split may permute them within the batch.
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect) << topo.name() << " batch k=" << k;
  }
  for (NodeIndex b = 0; b < topo.num_balancers(); ++b) {
    std::uint64_t through = 0;
    for (PortIndex j = 0; j < topo.balancer(b).fan_out(); ++j) {
      through += spec.balancer_out_count(b, j);
    }
    EXPECT_EQ(net.balancer_through(b), through)
        << topo.name() << " balancer " << b;
  }
  const std::vector<std::uint64_t> sinks = net.sink_counts();
  for (std::uint32_t j = 0; j < topo.fan_out(); ++j) {
    EXPECT_EQ(sinks[j], spec.sink_count(j)) << topo.name() << " sink " << j;
  }
  EXPECT_EQ(net.total(), spec.total_exited());
}

TEST(ConcurrentBatch, PureBatchSizesMatchSequentialSpec) {
  // Issue-sized (1), sub-width (3), multi-round (64), and non-power-of-two
  // (37) batches, each against a fresh network so the per-size effect is
  // isolated.
  for (const std::uint32_t k : {1u, 3u, 64u, 37u}) {
    const std::vector<std::uint32_t> batches(5, k);
    expect_batch_matches_sequential(make_bitonic(8), batches);
    expect_batch_matches_sequential(make_periodic(8), batches);
    expect_batch_matches_sequential(make_counting_tree(8), batches);
  }
}

TEST(ConcurrentBatch, MixedBatchSizesMatchSequentialSpec) {
  // Interleaved sizes exercise the mod-f dispenser restarting from an
  // arbitrary residue (pos % f != 0) at every balancer.
  const std::vector<std::uint32_t> batches = {1, 3, 64, 37, 2, 8, 5, 1, 13};
  expect_batch_matches_sequential(make_bitonic(8), batches);
  expect_batch_matches_sequential(make_periodic(8), batches);
  expect_batch_matches_sequential(make_counting_tree(8), batches);
  expect_batch_matches_sequential(make_bitonic(4), batches);
}

TEST(ConcurrentBatch, BatchEqualsRepeatedSingleIncrements) {
  // From identical start states, one increment_batch(s, k) and k calls to
  // increment(s) leave bitwise-identical balancer and counter state.
  const Network topo = make_bitonic(8);
  ConcurrentNetwork batched(topo);
  ConcurrentNetwork single(topo);
  std::vector<std::uint64_t> got(96);
  batched.increment_batch(2, 96, got.data());
  std::vector<std::uint64_t> expect;
  for (int i = 0; i < 96; ++i) expect.push_back(single.increment(2));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
  for (NodeIndex b = 0; b < topo.num_balancers(); ++b) {
    EXPECT_EQ(batched.balancer_through(b), single.balancer_through(b));
  }
  EXPECT_EQ(batched.sink_counts(), single.sink_counts());
}

TEST(ConcurrentBatch, ZeroSizedBatchIsANoOp) {
  const Network topo = make_bitonic(4);
  ConcurrentNetwork net(topo);
  net.increment_batch(0, 0, nullptr);
  EXPECT_EQ(net.total(), 0u);
}

TEST(ConcurrentBatch, MixedBatchAndSingleThreadsStayGapFree) {
  // Half the threads issue single tokens, half issue odd-sized batches;
  // the union must still be a gap-free 0..n-1 and the network quiescently
  // smooth. This is the TSan-exercised interleaving test: batched and
  // single traversals share every balancer word.
  const Network topo = make_bitonic(8);
  ConcurrentNetwork net(topo);
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kSingles = 350;
  constexpr std::uint32_t kBatch = 7;
  constexpr std::uint32_t kBatches = 50;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      if (t % 2 == 0) {
        for (std::uint64_t k = 0; k < kSingles; ++k) {
          got[t].push_back(net.increment(t % 8));
        }
      } else {
        std::uint64_t vals[kBatch];
        for (std::uint32_t k = 0; k < kBatches; ++k) {
          net.increment_batch((t + k) % 8, kBatch, vals);
          got[t].insert(got[t].end(), vals, vals + kBatch);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<std::uint64_t> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 2 * kSingles + 2 * kBatch * kBatches);
  for (std::uint64_t i = 0; i < all.size(); ++i) ASSERT_EQ(all[i], i);
  EXPECT_TRUE(has_step_property(net.sink_counts()));
}

}  // namespace
}  // namespace cn
