// E6 — Structure table (paper Propositions 5.6-5.10, Table 1 parameters).
//
// For each construction and width, prints the measured structural
// parameters next to the paper's closed forms:
//   depth d(G), shallowness s(G), influence radius irad(G),
//   split depth sd(G), split number sp(G), continuous completeness and
//   uniform splittability.
//
// Purely structural — no traces are produced, so nothing here goes
// through an engine backend.
#include <iostream>

#include "bench_common.hpp"
#include "core/structure.hpp"
#include "core/valency.hpp"
#include "util/bits.hpp"

namespace {

using namespace cn;
using cn::bench::yes_no;

void row(TablePrinter& t, const Network& net, const std::string& sd_formula,
         const std::string& sp_formula) {
  const SplitAnalysis sa(net);
  t.add_row({net.name(), std::to_string(net.depth()),
             std::to_string(shallowness(net)),
             std::to_string(influence_radius(net)),
             sa.applicable() ? std::to_string(sa.split_depth()) : "-",
             sd_formula,
             sa.applicable() ? std::to_string(sa.split_number()) : "-",
             sp_formula,
             yes_no(sa.applicable() && sa.continuously_complete()),
             yes_no(sa.applicable() && sa.continuously_uniformly_splittable()),
             yes_no(is_uniform(net))});
}

}  // namespace

int main() {
  using namespace cn;
  std::cout << "E6: structural parameters vs paper closed forms "
               "(Propositions 5.6-5.10)\n\n";
  TablePrinter t({"network", "d(G)", "s(G)", "irad", "sd(G)", "sd formula",
                  "sp(G)", "sp formula", "cont.complete", "cont.splittable",
                  "uniform"});
  for (const std::uint32_t w : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const std::uint32_t k = log2_exact(w);
    row(t, make_bitonic(w), std::to_string((k * k - k + 2) / 2),
        std::to_string(k));
    row(t, make_periodic(w), std::to_string(k * k - k + 1), std::to_string(k));
    row(t, make_counting_tree(w), "-", "-");
  }
  t.print(std::cout);
  std::cout << "\nExpected: sd(B(w)) = (lg^2 w - lg w + 2)/2, "
               "sd(P(w)) = lg^2 w - lg w + 1, sp = lg w for both;\n"
               "the counting tree is uniform but not continuously complete "
               "(its sp column shows the trivial leaf-layer split).\n";
  return 0;
}
