// E9 — Theorem 4.1 on real threads: recorded concurrent runs against the
// shared-memory bitonic network (the engine's "concurrent" backend),
// with and without the local-delay (C_L) timer, feeding the same
// consistency analyzers as the simulator.
//
// Per configuration: observed non-linearizability and non-sequential-
// consistency fractions. With the C_L timer set above
// d(G) (c_max - 2 c_min) — interpreting the paced hop envelope as
// [c_min, c_max] — Theorem 4.1 predicts zero non-SC operations.
#include <iostream>

#include "bench_common.hpp"
#include "sim/timing.hpp"

int main() {
  using namespace cn;
  std::cout << "E9: consistency of recorded concurrent runs "
               "(Theorem 4.1 in practice)\n\n";
  const Network topo = make_bitonic(8);
  constexpr std::uint64_t kHopMin = 20'000;   // 20 us
  constexpr std::uint64_t kHopMax = 160'000;  // 160 us: ratio 8
  const std::uint64_t cl_bound =
      topo.depth() * (kHopMax - 2 * kHopMin);  // Theorem 4.1 bound: 720 us

  struct Config {
    const char* name;
    std::uint64_t ops_per_thread;
    std::uint64_t hop_min_ns, hop_max_ns, local_ns;
    std::uint64_t seed;
  };
  const Config configs[] = {
      {"unpaced, no local delay", 150, 0, 0, 0, 1},
      {"paced hops [20us,160us], no local delay", 60, kHopMin, kHopMax, 0, 2},
      {"paced hops + C_L timer above the bound", 60, kHopMin, kHopMax,
       cl_bound + 100'000, 3},
  };

  TablePrinter t({"configuration", "ops", "ops/s", "measured ratio",
                  "measured C_L us", "F_nl", "F_nsc", "SC?"});
  for (const Config& cfg : configs) {
    engine::RunSpec spec;
    spec.backend = "concurrent";
    spec.net = &topo;
    spec.threads = 4;
    spec.ops_per_thread = cfg.ops_per_thread;
    spec.hop_delay_min_ns = cfg.hop_min_ns;
    spec.hop_delay_max_ns = cfg.hop_max_ns;
    spec.local_delay_ns = cfg.local_ns;
    spec.seed = cfg.seed;
    spec.record_schedule = true;
    const engine::RunResult res = engine::run_backend(spec);
    if (!res.ok()) {
      std::cerr << cfg.name << ": " << res.error << "\n";
      return 1;
    }
    const TimingParameters tp = measure_timing(res.exec);
    t.add_row({cfg.name,
               std::to_string(static_cast<std::uint64_t>(
                   res.metric("total_ops"))),
               fmt_double(res.metric("ops_per_sec"), 0),
               fmt_double(tp.ratio(), 1),
               tp.C_L ? fmt_double(*tp.C_L * 1e6, 0) : "-",
               fmt_double(res.report.f_nl), fmt_double(res.report.f_nsc),
               cn::bench::yes_no(res.report.sequentially_consistent())});
  }
  // The sharded service, same analyzers: batching and residue-class
  // routing reorder value assignment, so its recorded trace is the
  // "scaled-up" counterpart of the unpaced row (no pacing knobs — the
  // timing columns do not apply to queued execution).
  {
    engine::RunSpec spec;
    spec.backend = "service";
    spec.net = &topo;
    spec.threads = 4;
    spec.ops_per_thread = 150;
    spec.service_shards = 2;
    spec.seed = 4;
    const engine::RunResult res = engine::run_backend(spec);
    if (!res.ok()) {
      std::cerr << "service: " << res.error << "\n";
      return 1;
    }
    t.add_row({"service, 2 shards, batch<=32",
               std::to_string(
                   static_cast<std::uint64_t>(res.metric("total_ops"))),
               fmt_double(res.metric("ops_per_sec"), 0), "-", "-",
               fmt_double(res.report.f_nl), fmt_double(res.report.f_nsc),
               cn::bench::yes_no(res.report.sequentially_consistent())});
  }

  t.print(std::cout);
  std::cout << "\nShape check: the C_L timer targets the bound d(G)(c_max "
               "- 2c_min) = "
            << cl_bound / 1000
            << " us computed from the\nintended hop envelope. The "
               "'measured' columns audit what the OS actually delivered: "
               "busy-wait\npacing enforces the FLOOR (c_min) exactly but "
               "scheduling noise can stretch c_max, so the\nTheorem 4.1 "
               "premise must be re-checked against measured values — "
               "exactly the kind of audit\nthe record_schedule facility "
               "exists for. On this host no inversion occurred in any "
               "row.\n";
  return 0;
}
