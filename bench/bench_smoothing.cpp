// Ablation — why the periodic network needs lg w blocks: worst observed
// output smoothness (max sink count - min sink count at quiescence) of a
// cascade of k block networks, k = 1..lg w, over randomized and
// adversarial input vectors.
//
// A counting network must be 1-smooth with ordered outputs; single blocks
// are not, and each extra block roughly halves the discrepancy — the
// structural reason behind d(P(w)) = lg^2 w (paper Section 2.6.2).
//
// This probe exercises quiescent output vectors, not timed traces, so it
// has no engine backend: it drives core/verify directly.
#include <iostream>

#include "bench_common.hpp"
#include "core/verify.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

int main() {
  using namespace cn;
  std::cout << "Ablation: smoothness of block cascades (why P(w) needs lg w "
               "blocks)\n\n";
  TablePrinter t({"w", "blocks", "depth", "worst smoothness", "counts?"});
  Xoshiro256 rng(0x5A00);
  for (const std::uint32_t w : {8u, 16u, 32u}) {
    for (std::uint32_t k = 1; k <= log2_exact(w); ++k) {
      const Network net = make_block_cascade(w, k);
      // Random probe plus the adversarial single-wire burst.
      std::uint64_t worst = worst_smoothness(net, rng, 200, 3 * w);
      std::vector<std::uint64_t> burst(w, 0);
      burst[0] = 4 * w + 1;
      worst = std::max(worst, smoothness(net, burst));
      const bool counts = check_counting_random(net, rng, 60, 2 * w).ok;
      t.add_row({std::to_string(w), std::to_string(k),
                 std::to_string(net.depth()), std::to_string(worst),
                 counts ? "yes" : "no"});
    }
  }
  t.print(std::cout);
  std::cout << "\nShape check: smoothness shrinks as blocks are added and "
               "the cascade counts at k = lg w\n(the periodic network). "
               "Note the gap between smoothing and counting: a cascade can "
               "reach\nsmoothness 1 one block early and still fail the "
               "step property — 1-smooth outputs need not\nbe ordered, "
               "which is exactly the distinction between smoothing and "
               "counting networks.\n";
  return 0;
}
