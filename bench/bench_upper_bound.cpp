// E5 — Theorem 5.4: under c_max/c_min < ℓ the non-sequential-consistency
// fraction is at most (ℓ-2)/(ℓ-1).
//
// For each ℓ we hunt for the worst F_nsc we can produce with ratio just
// below ℓ — randomized extreme-delay engine sweeps plus every wave
// attack whose required ratio fits — and print it against the bound.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/valency.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const CliArgs args(argc, argv);
  const std::uint32_t threads = cn::bench::sweep_threads(args);
  std::cout << "E5: upper bound on F_nsc under bounded asynchrony "
               "(Theorem 5.4)\n\n";
  TablePrinter t({"network", "ell (ratio < ell)", "bound (ell-2)/(ell-1)",
                  "worst F_nsc found", "how"});
  for (const std::uint32_t w : {8u, 16u}) {
    const Network net = make_bitonic(w);
    const SplitAnalysis split(net);
    for (const std::uint32_t ell : {2u, 3u, 4u, 6u, 8u, 12u}) {
      const double bound = (ell - 2.0) / (ell - 1.0);
      const double ratio = ell * 0.999;  // just below the hypothesis bound
      double worst = 0.0;
      std::string how = "random search";
      // Randomized extreme-delay search at this ratio.
      const auto rand = cn::bench::search_violations(
          cn::bench::random_search_spec(net, 1.0, ratio, /*seed=*/0xE5, 0.0,
                                        /*processes=*/w,
                                        /*tokens_per_process=*/4),
          /*trials=*/300, threads);
      worst = rand.worst_f_nsc;
      // Wave attacks whose required ratio fits under ell.
      for (std::uint32_t lvl = 1; lvl <= split.split_number(); ++lvl) {
        const engine::RunResult res = cn::bench::run_wave(net, lvl, 1.0, ratio);
        if (res.ok() && res.report.f_nsc > worst) {
          worst = res.report.f_nsc;
          how = "wave ell=" + std::to_string(lvl);
        }
      }
      if (worst > bound + 1e-9) {
        std::cerr << "BOUND VIOLATED: " << net.name() << " ell=" << ell
                  << " worst=" << worst << " bound=" << bound << "\n";
        return 1;
      }
      t.add_row({net.name(), std::to_string(ell), fmt_double(bound),
                 fmt_bound(worst, bound, /*lower_bound=*/false), how});
    }
  }
  t.print(std::cout);
  std::cout << "\nShape check: no execution exceeds (ell-2)/(ell-1); at "
               "ell = 2 (ratio < 2) the bound is 0 and\nindeed no "
               "non-sequentially-consistent execution exists (cf. LSST99 "
               "Corollary 3.10 via\nTheorem 3.2). The gap between the "
               "worst case found and the bound is Open Problem 4.\n";
  return 0;
}
