// Ablation — the asynchrony crossover: how the inconsistency fractions of
// the three-wave execution respond as c_max/c_min sweeps across the
// Proposition 5.3 threshold (lg w + 3)/2.
//
// The paper's bounds are threshold phenomena: below the required ratio
// the wave attack produces a fully consistent execution; above it the
// fractions jump straight to their bound values. This series makes the
// discontinuity visible (a "figure" in series form). Every wave runs
// through the engine's "wave" backend.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cn;
  std::cout << "Ablation: ratio sweep across the Proposition 5.3 threshold\n\n";
  for (const std::uint32_t w : {8u, 16u}) {
    const Network net = make_bitonic(w);
    const engine::RunResult probe = cn::bench::run_wave(net, /*ell=*/1);
    const double threshold = probe.metric("required_ratio");
    std::cout << net.name() << "  threshold = " << fmt_double(threshold, 3)
              << "\n";
    TablePrinter t({"ratio", "ratio/threshold", "F_nl", "F_nsc"});
    for (const double frac :
         {0.50, 0.80, 0.95, 0.99, 0.999, 1.001, 1.01, 1.05, 1.25, 2.00}) {
      const engine::RunResult res =
          cn::bench::run_wave(net, /*ell=*/1, 1.0, threshold * frac);
      if (!res.ok()) {
        std::cerr << res.error << "\n";
        return 1;
      }
      t.add_row({fmt_double(threshold * frac, 3), fmt_double(frac, 3),
                 fmt_double(res.report.f_nl), fmt_double(res.report.f_nsc)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Shape check: both fractions are exactly 0 below the "
               "threshold and exactly 1/3 above it —\nthe bound is a sharp "
               "phase transition in the adversary's power, not a gradual "
               "degradation.\n";
  return 0;
}
