// Generic engine sweep driver: any registered backend x any network x
// any trial count, fanned out over the parallel sweeper, reported
// through the structured results pipeline.
//
//   ./bench_sweep [--backend simulator] [--network bitonic] [--width 8]
//                 [--trials 200] [--threads 0] [--seed 1]
//                 [--c_min 1] [--c_max 2.5] [--local_delay 0]
//                 [--processes 8] [--ops 4] [--timeout_ms 0] [--retries 0]
//                 [--stream] [--wave] [--record <path>] [--replay <path>]
//                 [--json] [--list]
//
// --stream runs every trial against the incremental consistency checker
// (RunSpec::keep_trace = false): same aggregate report, O(open
// operations) trace memory per trial instead of O(tokens). --wave runs
// the simulated backends through the level-synchronous wave interpreter
// (RunSpec::wave_exec = true): byte-identical aggregate report, traversal
// batched level-by-level instead of token-by-token. --record
// writes the trace of a single trial (forces --trials 1) to a file in
// the versioned binary format of trace/serialize.hpp; --replay selects
// the "replay" backend on such a file.
//
// The aggregate report (table or --json) is byte-identical at every
// --threads value for the same seed: per-trial seeds are derived
// deterministically and the reduction runs in trial order. Wall time is
// therefore reported separately on stderr.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const CliArgs args(argc, argv);

  if (args.get_bool("list", false)) {
    std::cout << "registered backends:\n";
    for (const std::string& name : engine::backend_names()) {
      const engine::TraceSource* src = engine::find_backend(name);
      std::cout << "  " << name << " — " << src->description() << "\n";
    }
    return 0;
  }

  engine::SweepSpec sweep;
  engine::RunSpec& spec = sweep.base;
  spec.backend = args.get("backend", "simulator");
  spec.network = args.get("network", "bitonic");
  spec.width = static_cast<std::uint32_t>(args.get_int("width", 8));
  spec.processes = static_cast<std::uint32_t>(args.get_int("processes", 8));
  spec.ops_per_process = static_cast<std::uint32_t>(args.get_int("ops", 4));
  spec.c_min = args.get_double("c_min", 1.0);
  spec.c_max = args.get_double("c_max", 2.5);
  spec.local_delay_min = args.get_double("local_delay", 0.0);
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  spec.ell = static_cast<std::uint32_t>(args.get_int("ell", 1));
  spec.threads = static_cast<std::uint32_t>(args.get_int("run_threads", 4));
  spec.ops_per_thread =
      static_cast<std::uint64_t>(args.get_int("ops_per_thread", 50));
  sweep.trials = static_cast<std::uint64_t>(args.get_int("trials", 200));
  sweep.threads = cn::bench::sweep_threads(args);
  sweep.timeout_ms = static_cast<std::uint64_t>(args.get_int("timeout_ms", 0));
  sweep.max_retries = static_cast<std::uint32_t>(args.get_int("retries", 0));

  spec.keep_trace = !args.get_bool("stream", false);
  spec.wave_exec = args.get_bool("wave", false);
  spec.record_path = args.get("record", "");
  spec.replay_path = args.get("replay", "");
  if (!spec.replay_path.empty()) spec.backend = "replay";
  if (!spec.record_path.empty() && sweep.trials != 1) {
    // A recorded file holds ONE trial's trace; silently overwriting it
    // trials-1 times would record whichever trial finished last.
    std::cerr << "--record forces --trials 1 (was " << sweep.trials << ")\n";
    sweep.trials = 1;
  }

  if (engine::find_backend(spec.backend) == nullptr) {
    std::cerr << "unknown backend '" << spec.backend << "' — registered:";
    for (const std::string& name : engine::backend_names()) {
      std::cerr << " " << name;
    }
    std::cerr << "\n(use --list for descriptions)\n";
    return 2;
  }

  const engine::SweepStats stats = engine::sweep_stats(sweep);
  if (args.get_bool("json", false)) {
    std::cout << engine::to_json(stats) << "\n";
  } else {
    std::cout << engine::format_report(spec, stats);
  }
  std::cerr << "wall time: " << fmt_double(stats.wall_sec, 3) << "s ("
            << (sweep.threads == 0 ? "hw" : std::to_string(sweep.threads))
            << " sweeper threads)\n";
  return stats.errors == stats.trials && stats.trials > 0 ? 1 : 0;
}
