// Ablation — heterogeneous local delays (the per-process parameters
// c_min^P and C_L^P of Section 2.3, motivated by Shavit-Upfal-Zemach's
// steady-state analysis): one "hare" process issues operations back to
// back while the others honor a C_L timer.
//
// Per hare-delay setting: how many operations each class completes in a
// fixed simulated horizon, whether the hare itself stays sequentially
// consistent (its own C_L^P is what matters — Lemma 4.4 is per-process),
// and whether the paced processes do.
#include <iostream>

#include "bench_common.hpp"
#include "sim/consistency.hpp"
#include "sim/timing.hpp"

namespace {

using namespace cn;

/// Closed-loop execution where process 0 uses `hare_delay` between its
/// operations and every other process uses `tortoise_delay`. Wire delays
/// are adversarially extreme in [c_min, c_max].
TimedExecution heterogeneous_workload(const Network& net, double c_min,
                                      double c_max, double hare_delay,
                                      double tortoise_delay, double horizon,
                                      Xoshiro256& rng) {
  TimedExecution exec;
  exec.net = &net;
  const std::uint32_t d = net.depth();
  TokenId next = 0;
  for (ProcessId p = 0; p < net.fan_in(); ++p) {
    const double local = p == 0 ? hare_delay : tortoise_delay;
    double t = 0.0;
    std::uint32_t k = 0;
    while (t < horizon) {
      TokenPlan plan;
      plan.token = next++;
      plan.process = p;
      plan.source = p;
      plan.rank = k + rng.unit() * 0.9;
      plan.times.resize(d + 1);
      plan.times[0] = t;
      for (std::uint32_t h = 1; h <= d; ++h) {
        plan.times[h] = plan.times[h - 1] + (rng.below(2) ? c_min : c_max);
      }
      t = plan.times[d] + local;
      exec.plans.push_back(std::move(plan));
      ++k;
    }
  }
  return exec;
}

}  // namespace

int main() {
  using namespace cn;
  const Network net = make_bitonic(8);
  const double c_min = 1.0, c_max = 4.0;
  const double bound = net.depth() * (c_max - 2.0 * c_min);  // Thm 4.1: 12
  std::cout << "Ablation: heterogeneous local delays on " << net.name()
            << " (c_min=1, c_max=4, Theorem 4.1 bound " << bound << ")\n\n";
  TablePrinter t({"hare C_L^0", "tortoise C_L", "hare ops", "others ops",
                  "hare SC?", "others SC?", "global SC?"});
  Xoshiro256 rng(0x8E7);
  for (const double hare : {0.0, 4.0, 8.0, 12.1, 20.0}) {
    const double tortoise = bound + 0.1;
    std::uint64_t hare_ops = 0, other_ops = 0;
    bool hare_sc = true, others_sc = true, global_sc = true;
    for (int trial = 0; trial < 60; ++trial) {
      const TimedExecution exec = heterogeneous_workload(
          net, c_min, c_max, hare, tortoise, /*horizon=*/400.0, rng);
      const SimulationResult sim = simulate(exec);
      if (!sim.ok()) continue;
      for (const TokenRecord& r : sim.trace) {
        (r.process == 0 ? hare_ops : other_ops) += 1;
      }
      hare_sc &= is_sequentially_consistent_for(sim.trace, 0);
      for (ProcessId p = 1; p < net.fan_in(); ++p) {
        others_sc &= is_sequentially_consistent_for(sim.trace, p);
      }
      global_sc &= is_sequentially_consistent(sim.trace);
    }
    t.add_row({fmt_double(hare, 1), fmt_double(tortoise, 1),
               std::to_string(hare_ops), std::to_string(other_ops),
               cn::bench::yes_no(hare_sc), cn::bench::yes_no(others_sc),
               cn::bench::yes_no(global_sc)});
  }
  t.print(std::cout);
  std::cout << "\nShape check: Lemma 4.4 is per-process — the paced "
               "processes stay sequentially consistent\nno matter how "
               "fast the hare hammers the network, because their own "
               "C_L^P exceeds the bound.\nThe hare gains throughput "
               "roughly in proportion to its shorter cycle; whether it "
               "stays SC\nitself below the bound is not guaranteed "
               "(random schedules rarely violate it).\n";
  return 0;
}
