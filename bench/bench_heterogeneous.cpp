// Ablation — heterogeneous local delays (the per-process parameters
// c_min^P and C_L^P of Section 2.3, motivated by Shavit-Upfal-Zemach's
// steady-state analysis): one "hare" process issues operations back to
// back while the others honor a C_L timer.
//
// Per hare-delay setting: how many operations each class completes in a
// fixed simulated horizon, whether the hare itself stays sequentially
// consistent (its own C_L^P is what matters — Lemma 4.4 is per-process),
// and whether the paced processes do. Trials run through the engine's
// "sim_heterogeneous" backend on the parallel sweeper.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const CliArgs args(argc, argv);
  const Network net = make_bitonic(8);
  const double c_min = 1.0, c_max = 4.0;
  const double bound = net.depth() * (c_max - 2.0 * c_min);  // Thm 4.1: 12
  std::cout << "Ablation: heterogeneous local delays on " << net.name()
            << " (c_min=1, c_max=4, Theorem 4.1 bound " << bound << ")\n\n";
  TablePrinter t({"hare C_L^0", "tortoise C_L", "hare ops", "others ops",
                  "hare SC?", "others SC?", "global SC?"});
  for (const double hare : {0.0, 4.0, 8.0, 12.1, 20.0}) {
    const double tortoise = bound + 0.1;
    engine::SweepSpec sweep;
    sweep.base.backend = "sim_heterogeneous";
    sweep.base.net = &net;
    sweep.base.c_min = c_min;
    sweep.base.c_max = c_max;
    sweep.base.hare_delay = hare;
    sweep.base.tortoise_delay = tortoise;
    sweep.base.horizon = 400.0;
    sweep.base.seed = 0x8E7;
    sweep.trials = 60;
    sweep.threads = cn::bench::sweep_threads(args);
    const engine::SweepStats r = engine::sweep_stats(sweep);
    const auto sum = [&r](const char* key) {
      const auto it = r.metric_sums.find(key);
      return it == r.metric_sums.end() ? 0.0 : it->second;
    };
    // The per-trial SC metrics are 0/1, so "every trial SC" means the
    // sum equals the number of completed trials.
    const bool hare_sc = sum("hare_sc") == static_cast<double>(r.completed);
    const bool others_sc = sum("others_sc") == static_cast<double>(r.completed);
    t.add_row({fmt_double(hare, 1), fmt_double(tortoise, 1),
               std::to_string(static_cast<std::uint64_t>(sum("hare_ops"))),
               std::to_string(static_cast<std::uint64_t>(sum("other_ops"))),
               cn::bench::yes_no(hare_sc), cn::bench::yes_no(others_sc),
               cn::bench::yes_no(r.sc_violations == 0)});
  }
  t.print(std::cout);
  std::cout << "\nShape check: Lemma 4.4 is per-process — the paced "
               "processes stay sequentially consistent\nno matter how "
               "fast the hare hammers the network, because their own "
               "C_L^P exceeds the bound.\nThe hare gains throughput "
               "roughly in proportion to its shorter cycle; whether it "
               "stays SC\nitself below the bound is not guaranteed "
               "(random schedules rarely violate it).\n";
  return 0;
}
