// E12 — Counting-as-a-service: the sharded service under closed-loop
// saturation and open-loop (Poisson / bursty) load.
//
//   bench_service [--width 8] [--clients 8] [--ops 2000] [--shards 1,2,4]
//                 [--batch 32] [--seed 1] [--smoke] [--json] [--no-faults]
//                 [--ingress [--client-batch 16] [--ingress-shards N]]
//
// Four sections:
//   saturation   closed-loop throughput + latency percentiles for the
//                service at each shard count vs the baseline counters
//                (fetch&inc, MCS, combining tree, diffracting tree) and
//                the raw concurrent network (single-token and batched) —
//                every row driven through the engine registry.
//   open_loop    an open-system load generator offering Poisson and
//                bursty arrivals at a fraction of the measured
//                saturation rate. Latency is measured from the SCHEDULED
//                arrival time (coordinated-omission-free): queue wait
//                counts, a stalled service cannot hide behind a stalled
//                generator.
//   consistency  a recorded service run with the streaming analyzers
//                attached live: F_nl / F_nsc as measured, and the
//                quiescent counting check (Lemma 3.1 says the residue
//                router preserves gap-free counting when every accepted
//                ticket completes - counting_violation must be 0).
//   degradation  the same service under injected worker stalls and
//                abandons (src/fault plans): drop counts, latency
//                inflation, and the counting damage the drops cause.
//
//   --elastic    elastic-width mode (E14): a diurnal open-loop generator
//                ramps the offered rate through two full low/high cycles
//                against an elastic service (Props 5.6-5.10 live
//                resharding). The adaptive controller splits under queue
//                pressure and merges when drained; a forced resize at
//                each phase boundary is the fallback that guarantees the
//                run walks through >= 2 splits and >= 2 merges either
//                way. Every epoch boundary takes the Lemma 3.1 residue
//                audit at its quiescence fence and reports measured
//                F_nl / F_nsc against the Cor 5.12/5.13 bounds for its
//                split level; the gate is audit_exact && gap_free across
//                EVERY epoch plus the transition counts. --elastic-ms
//                bounds the run; --json emits the gated report.
//
//   --ingress    batched-ingress mode (E15): closed-loop saturation with
//                every request riding submit_batch (one ticket-range
//                draw, at most min(batch, shards) queue cells, one
//                park/wake cycle per batch) against a RECORDED service —
//                the streaming consistency checker and the degradation
//                accumulator attached live through a tee. A classic
//                single-submit leg runs first as the throughput
//                reference. The run is fault-free by construction, so
//                the gate demands perfection: Lemma 3.1 residue audit
//                exact + gap-free and zero counting violations —
//                batching changes the schedule, never the count. --json
//                emits the gated report; exits nonzero when the gate
//                fails.
//
//   --soak       long-running self-healing mode (E13): an open-loop
//                generator cycles phases — steady Poisson, diurnal
//                sine-modulated Poisson, saturation bursts — against a
//                supervised service with admission watermarks while a
//                seed-driven ChaosPlan crashes and stalls workers
//                mid-run. The streaming consistency + degradation
//                analyzers are attached live, the supervisor respawns
//                crashed workers, health is polled periodically, and at
//                quiescence the Lemma 3.1 residue audit must account
//                every hole exactly. --soak-ms bounds the run (CI runs
//                ~8 s); --json emits the gated report.
//
// --smoke shrinks every section for CI; --json emits one machine-checked
// object with all sections.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fault/chaos.hpp"
#include "service/client.hpp"
#include "service/histogram.hpp"
#include "service/service.hpp"
#include "trace/streaming.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace {

using namespace cn;

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Busy-waits (yielding) until the steady clock reaches `deadline_ns`.
void wait_until_ns(std::uint64_t deadline_ns) {
  while (now_ns() < deadline_ns) std::this_thread::yield();
}

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

struct LatencyRow {
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

/// Percentiles of (t_out - t_in) over a recorded engine trace, via the
/// same histogram the service uses.
LatencyRow trace_latency(const engine::RunResult& res) {
  LatencyRow row;
  row.ops_per_sec = res.metric("ops_per_sec");
  service::LatencyHistogram h;
  for (const TokenRecord& rec : res.trace) {
    const double sec = rec.t_out - rec.t_in;
    h.record(sec > 0 ? static_cast<std::uint64_t>(sec * 1e9) : 0);
  }
  row.p50_us = us(h.p50());
  row.p99_us = us(h.p99());
  row.p999_us = us(h.p999());
  return row;
}

struct OpenLoopResult {
  double offered_per_sec = 0.0;
  double achieved_per_sec = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  LatencyRow lat;
};

/// Open-loop run: one generator thread submits `total_ops` fire-and-
/// forget requests on a precomputed arrival schedule (Poisson:
/// exponential inter-arrival; bursty: back-to-back bursts of
/// `burst_size` every burst_size/rate seconds). A full queue rejects
/// the arrival — open-loop clients never retry or block.
OpenLoopResult run_open_loop(const Network& net, std::uint32_t shards,
                             std::uint32_t batch, double rate_per_sec,
                             std::uint64_t total_ops, std::uint32_t burst_size,
                             std::uint64_t seed) {
  service::ServiceConfig cfg;
  cfg.shards = shards;
  cfg.max_batch = batch;
  cfg.net = &net;
  cfg.seed = seed;
  service::CountingService svc(cfg);
  svc.start();

  Xoshiro256 rng(seed ^ 0xa5a5a5a5ULL);
  const double mean_gap_ns = 1e9 / rate_per_sec;
  const std::uint64_t t0 = now_ns() + 1000000;  // 1 ms of lead time
  double next_ns = 0.0;
  std::uint64_t rejected = 0;
  for (std::uint64_t k = 0; k < total_ops; ++k) {
    if (burst_size <= 1) {
      next_ns += -std::log(1.0 - rng.unit()) * mean_gap_ns;
    } else if (k % burst_size == 0 && k > 0) {
      next_ns += mean_gap_ns * burst_size;  // whole burst arrives at once
    }
    const std::uint64_t scheduled = t0 + static_cast<std::uint64_t>(next_ns);
    wait_until_ns(scheduled);
    // Latency is anchored at the SCHEDULED arrival: if the generator
    // fell behind (overload), the wait it could not perform still counts
    // against the service, not in its favor.
    if (!svc.try_submit(0, scheduled)) ++rejected;
  }
  const std::uint64_t gen_elapsed = now_ns() - t0;
  svc.stop();

  const service::ServiceStats& st = svc.stats();
  OpenLoopResult out;
  out.offered_per_sec = rate_per_sec;
  out.submitted = st.submitted;
  out.rejected = rejected;
  out.achieved_per_sec =
      gen_elapsed > 0
          ? static_cast<double>(st.completed) * 1e9 / gen_elapsed
          : 0.0;
  out.lat.ops_per_sec = out.achieved_per_sec;
  out.lat.p50_us = us(st.latency.p50());
  out.lat.p99_us = us(st.latency.p99());
  out.lat.p999_us = us(st.latency.p999());
  return out;
}

// --- ingress mode (E15): batched submission lanes, recorded + gated ----

struct IngressResult {
  service::ServiceStats stats;
  service::ResidueAudit audit;
  ConsistencyReport report;
  fault::Degradation degradation;
  double single_per_sec = 0.0;   ///< Classic one-request closed loop.
  double batched_per_sec = 0.0;  ///< submit_batch closed loop (recorded).
  std::uint64_t client_completed = 0;
  std::uint64_t client_rejected = 0;
  bool gate_ok = false;  ///< audit exact + gap-free, zero violations.
};

/// Closed-loop saturation through the batched ingress: `clients` policy
/// clients each submit ops_per_client requests as submit_batch bursts of
/// `client_batch` against a recorded service, analyzers attached live.
/// An unrecorded classic-submit leg runs first as the reference rate.
IngressResult run_ingress(const Network& net, std::uint32_t shards,
                          std::uint32_t batch, std::uint32_t clients,
                          std::uint32_t client_batch,
                          std::uint64_t ops_per_client, std::uint64_t seed) {
  IngressResult out;
  const service::SubmitPolicy policy;  // Default gears, no deadline.

  {  // Reference leg: one-request submits, unrecorded.
    service::ServiceConfig cfg;
    cfg.shards = shards;
    cfg.max_batch = batch;
    cfg.net = &net;
    cfg.seed = seed;
    service::CountingService svc(cfg);
    svc.start();
    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> completed{0};
    std::vector<std::thread> threads;
    for (std::uint32_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        service::PolicyClient pc(svc, policy, c, seed + c);
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        std::uint64_t done = 0;
        for (std::uint64_t i = 0; i < ops_per_client; ++i) {
          done += pc.submit(now_ns()).status ==
                  service::SubmitStatus::kCompleted;
        }
        completed.fetch_add(done, std::memory_order_relaxed);
      });
    }
    const std::uint64_t t0 = now_ns();
    go.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
    const std::uint64_t elapsed = now_ns() - t0;
    svc.stop();
    out.single_per_sec =
        elapsed > 0 ? static_cast<double>(completed.load()) * 1e9 /
                          static_cast<double>(elapsed)
                    : 0.0;
  }

  {  // Gated leg: batched ingress, recorded, analyzers live.
    StreamingConsistency checker;
    fault::DegradationAccumulator degradation;
    TeeSink tee(checker, degradation);
    service::ServiceConfig cfg;
    cfg.shards = shards;
    cfg.max_batch = batch;
    cfg.net = &net;
    cfg.seed = seed;
    cfg.record = true;
    service::CountingService svc(cfg, &tee);
    svc.start();
    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::vector<std::thread> threads;
    for (std::uint32_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        service::PolicyClient pc(svc, policy, c, seed + c);
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        std::uint64_t done = 0, refused = 0;
        for (std::uint64_t i = 0; i < ops_per_client; i += client_batch) {
          const std::uint32_t n = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(client_batch, ops_per_client - i));
          const service::BatchReport rep = pc.submit_batch(now_ns(), n);
          done += rep.completed;
          refused += rep.rejected;
        }
        completed.fetch_add(done, std::memory_order_relaxed);
        rejected.fetch_add(refused, std::memory_order_relaxed);
      });
    }
    const std::uint64_t t0 = now_ns();
    go.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
    const std::uint64_t elapsed = now_ns() - t0;
    svc.stop();
    tee.finish();
    out.batched_per_sec =
        elapsed > 0 ? static_cast<double>(completed.load()) * 1e9 /
                          static_cast<double>(elapsed)
                    : 0.0;
    out.client_completed = completed.load();
    out.client_rejected = rejected.load();
    out.stats = svc.stats();
    out.audit = svc.audit();
    out.report = checker.report();
    out.degradation = degradation.result(shards * net.fan_out());
  }

  out.gate_ok = out.audit.exact && out.audit.gap_free &&
                out.degradation.counting_violation == 0.0;
  return out;
}

std::string json_ingress(const IngressResult& r, std::uint32_t clients,
                         std::uint32_t client_batch, std::uint32_t shards) {
  std::ostringstream os;
  os << "{\"clients\":" << clients << ",\"client_batch\":" << client_batch
     << ",\"shards\":" << shards << ",\"single_per_sec\":"
     << fmt_double(r.single_per_sec, 1) << ",\"batched_per_sec\":"
     << fmt_double(r.batched_per_sec, 1) << ",\"batched_over_single\":"
     << fmt_double(r.batched_per_sec / std::max(r.single_per_sec, 1.0), 3)
     << ",\"submitted\":" << r.stats.submitted << ",\"completed\":"
     << r.stats.completed << ",\"rejected\":" << r.stats.rejected
     << ",\"client_completed\":" << r.client_completed
     << ",\"client_rejected\":" << r.client_rejected
     << ",\"ingress_batches\":" << r.stats.ingress_batches
     << ",\"ingress_cells\":" << r.stats.ingress_cells
     << ",\"tokens\":" << r.report.total << ",\"f_nl\":"
     << fmt_double(r.report.f_nl, 4) << ",\"f_nsc\":"
     << fmt_double(r.report.f_nsc, 4) << ",\"audit_exact\":"
     << (r.audit.exact ? 1 : 0) << ",\"audit_gap_free\":"
     << (r.audit.gap_free ? 1 : 0) << ",\"counting_violation\":"
     << fmt_double(r.degradation.counting_violation, 0)
     << ",\"smoothness_gap\":" << fmt_double(r.degradation.smoothness_gap, 1)
     << ",\"p50_us\":" << fmt_double(us(r.stats.latency.p50()), 3)
     << ",\"p99_us\":" << fmt_double(us(r.stats.latency.p99()), 3)
     << ",\"gate_ok\":" << (r.gate_ok ? 1 : 0) << "}";
  return os.str();
}

// --- soak mode (E13): phased arrivals + chaos + live analyzers ---------

struct HealthSample {
  std::uint64_t t_ms = 0;
  std::uint64_t completed = 0;
  std::uint64_t max_depth = 0;
  std::uint64_t max_heartbeat_age_us = 0;
  std::uint64_t respawns = 0;
  std::uint64_t shed = 0;
  bool invariant_ok = true;
};

struct SoakResult {
  service::ServiceStats stats;
  service::ResidueAudit audit;
  ConsistencyReport report;
  fault::Degradation degradation;
  std::vector<HealthSample> samples;
  std::string chaos_desc;
  double base_rate = 0.0;
  double achieved_per_sec = 0.0;
  std::uint64_t soak_ms = 0;
  std::uint64_t deadline_completed = 0;  ///< Policy-client outcomes.
  std::uint64_t deadline_timed_out = 0;
  std::uint64_t deadline_retries = 0;
  bool fault_free_clean = true;  ///< No holes => counting must be clean.
};

/// Offered rate at soak-time `t`: three phases over the run. The middle
/// phase is the ROADMAP's diurnal arrival process — a sine-modulated
/// Poisson rate with two full periods compressed into the phase.
double phase_rate(double base, std::uint64_t t_ms, std::uint64_t total_ms) {
  const double t = static_cast<double>(t_ms);
  const double total = static_cast<double>(total_ms);
  if (t < total * 0.25) return base;  // steady
  if (t < total * 0.75) {             // diurnal
    const double span = total * 0.5;
    const double x = (t - total * 0.25) / span;  // 0..1 across the phase
    return base * (1.0 + 0.7 * std::sin(2.0 * 3.14159265358979 * 2.0 * x));
  }
  return base;  // burst phase: base, with chaos arrival bursts overlaid
}

SoakResult run_soak(const Network& net, std::uint32_t shards,
                    std::uint32_t batch, double base_rate,
                    std::uint64_t soak_ms, std::uint64_t seed) {
  SoakResult out;
  out.base_rate = base_rate;
  out.soak_ms = soak_ms;

  // Expected per-shard processed count sets the chaos horizon so the
  // schedule lands inside the run.
  const std::uint64_t expected_total = static_cast<std::uint64_t>(
      base_rate * static_cast<double>(soak_ms) / 1000.0);
  const std::uint64_t per_shard =
      std::max<std::uint64_t>(expected_total / std::max(shards, 1u), 64);

  service::ServiceConfig cfg;
  cfg.shards = shards;
  cfg.max_batch = batch;
  cfg.net = &net;
  cfg.seed = seed;
  cfg.record = true;
  cfg.supervise = true;
  cfg.shed_high_watermark = 0.90;  // Shed before the queue saturates...
  cfg.shed_low_watermark = 0.50;   // ...resume once half-drained.
  // One guaranteed early crash (the FaultPlan sugar event) plus a
  // seed-driven schedule of further crashes and stall windows.
  cfg.fault.enabled = true;
  cfg.fault.worker_crash_at = std::max<std::uint64_t>(per_shard / 8, 16);
  cfg.fault.worker_crash_shard = 0;
  cfg.fault.worker_crash_lose = 0;  // Crash-only: recovery must keep
                                    // counting clean (no holes).
  fault::ChaosMix mix;
  mix.crashes = shards > 1 ? 1 : 0;  // A second crash on a random shard.
  mix.stall_windows = 1;
  mix.bursts = 1;
  mix.stall_ns = 2'000'000;  // 2 ms per stalled batch: visible wedge.
  mix.window_ops = std::max<std::uint64_t>(per_shard / 16, 32);
  mix.burst_ops = std::max<std::uint64_t>(expected_total / 16, 64);
  mix.burst_factor = 6.0;
  cfg.chaos = fault::ChaosPlan::random(seed, shards, per_shard, mix);
  out.chaos_desc = cfg.chaos.describe();

  StreamingConsistency checker;
  fault::DegradationAccumulator degradation;
  TeeSink tee(checker, degradation);
  service::CountingService svc(cfg, &tee);
  svc.start();

  // A couple of closed-loop deadline clients ride along to exercise the
  // resilient-client path (bounded retries, seeded backoff, timeouts
  // against crashed shards). Allocated outside their threads: timed-out
  // slots stay leased to the service until after stop().
  service::SubmitPolicy policy;
  policy.max_retries = 8;
  policy.deadline_ns = 20'000'000;  // 20 ms
  constexpr std::uint32_t kPolicyClients = 2;
  std::vector<std::unique_ptr<service::PolicyClient>> policy_clients;
  for (std::uint32_t c = 0; c < kPolicyClients; ++c) {
    policy_clients.push_back(std::make_unique<service::PolicyClient>(
        svc, policy, 1000 + c, seed + c));
  }
  std::atomic<bool> clients_stop{false};
  std::vector<std::thread> client_threads;
  for (std::uint32_t c = 0; c < kPolicyClients; ++c) {
    client_threads.emplace_back([&, c] {
      // Alternate the classic single path with a 4-request batch so the
      // soak exercises BOTH ingresses against crashes, stalls, and
      // shedding (a shed batch retries whole; a crashed shard drops its
      // runs element-wise).
      std::uint64_t iter = 0;
      while (!clients_stop.load(std::memory_order_acquire)) {
        if (iter++ % 2 == 0) {
          policy_clients[c]->submit(now_ns());
        } else {
          policy_clients[c]->submit_batch(now_ns(), 4);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }

  // Health poller: periodic mid-run snapshots + invariant checks (the
  // "is the service still sane" half of the residue audit; the exact
  // gap audit needs quiescence and runs after stop()).
  std::atomic<bool> poller_stop{false};
  std::thread poller([&] {
    const std::uint64_t poll_ms = std::max<std::uint64_t>(soak_ms / 40, 50);
    const std::uint64_t t0 = now_ns();
    while (!poller_stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      const service::ServiceHealth h = svc.health();
      HealthSample s;
      s.t_ms = (now_ns() - t0) / 1'000'000;
      s.respawns = h.respawns;
      s.shed = h.shed;
      std::uint64_t completed = 0;
      for (const service::ShardHealth& sh : h.shards) {
        completed += sh.completed;
        s.max_depth = std::max(s.max_depth, sh.queue_depth);
        s.max_heartbeat_age_us =
            std::max(s.max_heartbeat_age_us, sh.heartbeat_age_ns / 1000);
      }
      s.completed = completed;
      // Mid-run invariant: completions never exceed accepted submits.
      s.invariant_ok = completed <= h.submitted;
      out.samples.push_back(s);
    }
  });

  // Open-loop generator with phased arrivals; chaos arrival bursts
  // multiply the offered rate while the submission index is in-window.
  const std::vector<fault::ChaosEvent> bursts = cfg.chaos.arrival_events();
  Xoshiro256 rng(seed ^ 0x50a7a5ULL);
  const std::uint64_t t0 = now_ns();
  const std::uint64_t t_end = t0 + soak_ms * 1'000'000;
  double next_ns = 0.0;
  std::uint64_t submissions = 0;
  while (true) {
    const std::uint64_t now = now_ns();
    if (now >= t_end) break;
    double rate = phase_rate(base_rate, (now - t0) / 1'000'000, soak_ms);
    for (const fault::ChaosEvent& b : bursts) {
      if (submissions >= b.at_ops && submissions < b.at_ops + b.duration_ops) {
        rate *= b.rate_factor;
      }
    }
    next_ns += -std::log(1.0 - rng.unit()) * (1e9 / std::max(rate, 1.0));
    const std::uint64_t scheduled = t0 + static_cast<std::uint64_t>(next_ns);
    if (scheduled > t_end) break;
    if (scheduled > now + 200'000) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(scheduled - now - 100'000));
    }
    wait_until_ns(scheduled);
    svc.try_submit(0, scheduled);  // Open loop: refusals are the
                                   // service's to count (shed/rejected).
    ++submissions;
  }
  const std::uint64_t gen_elapsed = now_ns() - t0;

  clients_stop.store(true, std::memory_order_release);
  for (std::thread& t : client_threads) t.join();
  poller_stop.store(true, std::memory_order_release);
  poller.join();
  svc.stop();
  tee.finish();

  out.stats = svc.stats();
  out.audit = svc.audit();
  out.report = checker.report();
  out.degradation = degradation.result(shards * net.fan_out());
  out.achieved_per_sec =
      gen_elapsed > 0
          ? static_cast<double>(out.stats.completed) * 1e9 / gen_elapsed
          : 0.0;
  for (const auto& c : policy_clients) {
    out.deadline_completed += c->stats().completed;
    out.deadline_timed_out += c->stats().timed_out;
    out.deadline_retries += c->stats().retries;
  }
  policy_clients.clear();  // Safe: post-stop, every slot has resolved.
  // The self-healing claim: when nothing burned a ticket (no holes),
  // counting must be PERFECT despite crashes, respawns, stalls, sheds.
  if (out.audit.holes == 0) {
    out.fault_free_clean = out.degradation.counting_violation == 0.0;
  }
  return out;
}

std::string json_soak(const SoakResult& r) {
  std::ostringstream os;
  std::uint64_t max_depth = 0, max_age_us = 0;
  bool invariants_ok = true;
  for (const HealthSample& s : r.samples) {
    max_depth = std::max(max_depth, s.max_depth);
    max_age_us = std::max(max_age_us, s.max_heartbeat_age_us);
    invariants_ok = invariants_ok && s.invariant_ok;
  }
  os << "{\"soak_ms\":" << r.soak_ms << ",\"base_rate\":"
     << fmt_double(r.base_rate, 1) << ",\"achieved_per_sec\":"
     << fmt_double(r.achieved_per_sec, 1) << ",\"submitted\":"
     << r.stats.submitted << ",\"rejected\":" << r.stats.rejected
     << ",\"shed\":" << r.stats.shed << ",\"completed\":"
     << r.stats.completed << ",\"dropped\":" << r.stats.dropped
     << ",\"crash_lost\":" << r.stats.crash_lost << ",\"abandoned\":"
     << r.stats.abandoned << ",\"timed_out\":" << r.stats.timed_out
     << ",\"crashes\":" << r.stats.crashes << ",\"respawns\":"
     << r.stats.respawns << ",\"wedge_detections\":"
     << r.stats.wedge_detections << ",\"holes\":" << r.audit.holes
     << ",\"audit_exact\":" << (r.audit.exact ? 1 : 0)
     << ",\"audit_gap_free\":" << (r.audit.gap_free ? 1 : 0)
     << ",\"fault_free_clean\":" << (r.fault_free_clean ? 1 : 0)
     << ",\"counting_violation\":"
     << fmt_double(r.degradation.counting_violation, 0)
     << ",\"smoothness_gap\":" << fmt_double(r.degradation.smoothness_gap, 1)
     << ",\"tokens\":" << r.report.total << ",\"f_nl\":"
     << fmt_double(r.report.f_nl, 4) << ",\"f_nsc\":"
     << fmt_double(r.report.f_nsc, 4) << ",\"p50_us\":"
     << fmt_double(us(r.stats.latency.p50()), 3) << ",\"p99_us\":"
     << fmt_double(us(r.stats.latency.p99()), 3)
     << ",\"deadline_completed\":" << r.deadline_completed
     << ",\"deadline_timed_out\":" << r.deadline_timed_out
     << ",\"deadline_retries\":" << r.deadline_retries
     << ",\"health_samples\":" << r.samples.size()
     << ",\"invariants_ok\":" << (invariants_ok ? 1 : 0)
     << ",\"max_queue_depth\":" << max_depth
     << ",\"max_heartbeat_age_us\":" << max_age_us
     << ",\"chaos\":\"" << r.chaos_desc << "\"}";
  return os.str();
}

// --- elastic mode (E14): diurnal ramp through live splits/merges -------

struct ElasticResult {
  service::ServiceStats stats;
  service::ResidueAudit audit;
  std::vector<service::EpochStats> epochs;
  double base_rate = 0.0;
  double achieved_per_sec = 0.0;
  std::uint64_t elastic_ms = 0;
  std::uint64_t submissions = 0;
  std::uint32_t forced_resizes = 0;
  bool epochs_ok = true;
  bool gate_ok = false;  ///< audit && >=2 splits && >=2 merges.
};

/// Offered-rate shape: two full low/high cycles (five segments
/// low-high-low-high-low), the "diurnal" ramp compressed into the run.
/// Segment k also carries the forced-resize target for its boundary:
/// peaks want the deepest level, valleys want level 0.
double elastic_rate(double base, double x /* 0..1 */) {
  // Smooth sine ramp between 0.4x and 1.6x of base, two periods.
  return base * (1.0 + 0.6 * std::sin(2.0 * 3.14159265358979 * 2.0 * x -
                                      3.14159265358979 / 2.0));
}

ElasticResult run_elastic(const Network& net, std::uint32_t max_level,
                          std::uint32_t batch, double base_rate,
                          std::uint64_t elastic_ms, std::uint64_t seed,
                          bool controller) {
  ElasticResult out;
  out.base_rate = base_rate;
  out.elastic_ms = elastic_ms;

  service::ServiceConfig cfg;
  cfg.max_batch = batch;
  cfg.net = &net;
  cfg.seed = seed;
  cfg.record = true;  // Per-epoch F_nl/F_nsc needs the recording tee.
  cfg.shed_high_watermark = 0.90;
  cfg.shed_low_watermark = 0.50;
  cfg.elastic.enabled = true;
  cfg.elastic.initial_level = 0;
  cfg.elastic.min_level = 0;
  cfg.elastic.max_level = max_level;
  cfg.elastic.controller = controller;
  cfg.elastic.split_queue_frac = 0.35;
  cfg.elastic.merge_queue_frac = 0.03;
  cfg.elastic.breach_polls = 3;
  cfg.elastic.cooldown_ns = elastic_ms * 1'000'000 / 25;
  if (std::string err = service::validate(cfg); !err.empty()) {
    std::cerr << "elastic config: " << err << "\n";
    return out;
  }

  StreamingConsistency checker;  // Whole-run downstream analyzer; the
                                 // per-epoch tee lives in the service.
  service::CountingService svc(cfg, &checker);
  svc.start();

  // Phase boundaries at the sine's quarter points; the target level
  // follows the ramp (peak => max_level, valley => 0). The controller
  // may get there first — the forced resize is the fallback that makes
  // the >= 2 splits / >= 2 merges gate schedule-independent.
  const std::uint32_t targets[] = {max_level, 0, max_level, 0};
  const double boundaries[] = {0.20, 0.45, 0.70, 0.95};
  std::size_t next_boundary = 0;

  Xoshiro256 rng(seed ^ 0xe1a5ULL);
  const std::uint64_t t0 = now_ns();
  const std::uint64_t t_end = t0 + elastic_ms * 1'000'000;
  double next_ns = 0.0;
  while (true) {
    const std::uint64_t now = now_ns();
    if (now >= t_end) break;
    const double x = static_cast<double>(now - t0) /
                     static_cast<double>(t_end - t0);
    if (next_boundary < std::size(boundaries) &&
        x >= boundaries[next_boundary]) {
      const std::uint32_t target = targets[next_boundary];
      ++next_boundary;
      if (svc.current_level() != target && svc.resize(target).empty()) {
        ++out.forced_resizes;
      }
      continue;
    }
    const double rate = std::max(elastic_rate(base_rate, x), 1.0);
    next_ns += -std::log(1.0 - rng.unit()) * (1e9 / rate);
    const std::uint64_t scheduled = t0 + static_cast<std::uint64_t>(next_ns);
    if (scheduled > t_end) break;
    if (scheduled > now + 200'000) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(scheduled - now - 100'000));
    }
    wait_until_ns(scheduled);
    // Every 4th tick rides the batched ingress as a fire-and-forget
    // 4-request batch and consumes four inter-arrival gaps, keeping the
    // offered RATE unchanged — the epoch fence must treat the batch as
    // ONE pending lease and every per-epoch audit stays exact. The rest
    // are classic open-loop singles; refusals are the service's to
    // count (shed/rejected) either way.
    if (out.submissions % 4 == 3) {
      svc.submit_batch(0, scheduled, nullptr, 4);
      for (int g = 0; g < 3; ++g) {
        next_ns += -std::log(1.0 - rng.unit()) * (1e9 / rate);
      }
    } else {
      svc.try_submit(0, scheduled);
    }
    ++out.submissions;
  }
  const std::uint64_t gen_elapsed = now_ns() - t0;
  svc.stop();
  checker.finish();

  out.stats = svc.stats();
  out.audit = svc.audit();
  out.epochs = svc.epoch_history();
  out.achieved_per_sec =
      gen_elapsed > 0
          ? static_cast<double>(out.stats.completed) * 1e9 / gen_elapsed
          : 0.0;
  for (const service::EpochStats& es : out.epochs) {
    if (!es.ok()) out.epochs_ok = false;
  }
  out.gate_ok = out.audit.ok() && out.epochs_ok && out.stats.splits >= 2 &&
                out.stats.merges >= 2;
  return out;
}

std::string json_elastic(const ElasticResult& r) {
  std::ostringstream os;
  os << "{\"elastic_ms\":" << r.elastic_ms << ",\"base_rate\":"
     << fmt_double(r.base_rate, 1) << ",\"achieved_per_sec\":"
     << fmt_double(r.achieved_per_sec, 1) << ",\"submissions\":"
     << r.submissions << ",\"submitted\":" << r.stats.submitted
     << ",\"completed\":" << r.stats.completed << ",\"shed\":"
     << r.stats.shed << ",\"rejected\":" << r.stats.rejected
     << ",\"epochs\":" << r.stats.epochs << ",\"splits\":" << r.stats.splits
     << ",\"merges\":" << r.stats.merges << ",\"forced_resizes\":"
     << r.forced_resizes << ",\"final_level\":" << r.stats.final_level
     << ",\"audit_exact\":" << (r.audit.exact ? 1 : 0)
     << ",\"audit_gap_free\":" << (r.audit.gap_free ? 1 : 0)
     << ",\"epochs_ok\":" << (r.epochs_ok ? 1 : 0)
     << ",\"gate_ok\":" << (r.gate_ok ? 1 : 0) << ",\"epoch_log\":[";
  for (std::size_t i = 0; i < r.epochs.size(); ++i) {
    const service::EpochStats& es = r.epochs[i];
    if (i > 0) os << ",";
    os << "{\"epoch\":" << es.index << ",\"level\":" << es.level
       << ",\"shards\":" << es.shards << ",\"tickets\":" << es.tickets
       << ",\"completed\":" << es.completed << ",\"shed\":" << es.shed
       << ",\"audit_exact\":" << (es.audit_exact ? 1 : 0)
       << ",\"gap_free\":" << (es.gap_free ? 1 : 0) << ",\"f_nl\":"
       << fmt_double(es.f_nl, 4) << ",\"f_nl_bound\":"
       << fmt_double(es.f_nl_bound, 4) << ",\"f_nsc\":"
       << fmt_double(es.f_nsc, 4) << ",\"f_nsc_bound\":"
       << fmt_double(es.f_nsc_bound, 4) << ",\"p50_us\":"
       << fmt_double(us(es.p50_ns), 3) << ",\"p99_us\":"
       << fmt_double(us(es.p99_ns), 3) << "}";
  }
  os << "]}";
  return os.str();
}

std::string json_latency(const LatencyRow& row) {
  std::ostringstream os;
  os << "\"ops_per_sec\":" << fmt_double(row.ops_per_sec, 1)
     << ",\"p50_us\":" << fmt_double(row.p50_us, 3)
     << ",\"p99_us\":" << fmt_double(row.p99_us, 3)
     << ",\"p999_us\":" << fmt_double(row.p999_us, 3);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const bool json = args.get_bool("json", false);
  const bool faults = !args.get_bool("no-faults", false);
  const auto width = static_cast<std::uint32_t>(args.get_int("width", 8));
  const auto clients =
      static_cast<std::uint32_t>(args.get_int("clients", smoke ? 4 : 8));
  const auto ops = static_cast<std::uint64_t>(
      args.get_int("ops", smoke ? 400 : 2000));
  const auto batch =
      static_cast<std::uint32_t>(args.get_int("batch", 32));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::vector<std::uint32_t> shard_counts;
  {
    std::istringstream ss(args.get("shards", smoke ? "1,2" : "1,2,4"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      shard_counts.push_back(
          static_cast<std::uint32_t>(std::stoul(tok)));
    }
  }

  const Network net = make_bitonic(width);

  // --- ingress mode (E15; exclusive like --soak/--elastic) ------------
  if (args.get_bool("ingress", false)) {
    const auto client_batch = static_cast<std::uint32_t>(
        args.get_int("client-batch", 16));
    const auto ing_shards = static_cast<std::uint32_t>(
        args.get_int("ingress-shards", shard_counts.back()));
    if (!json) {
      std::cout << "E15: batched ingress — " << clients << " clients x "
                << ops << " ops as submit_batch(" << client_batch << "), "
                << ing_shards << " shards, recorded + live analyzers\n";
    }
    const IngressResult r = run_ingress(net, ing_shards, batch, clients,
                                        client_batch, ops, seed);
    if (json) {
      std::cout << json_ingress(r, clients, client_batch, ing_shards)
                << "\n";
    } else {
      std::cout << "\n  single " << fmt_double(r.single_per_sec / 1e3, 1)
                << "k req/s  batched "
                << fmt_double(r.batched_per_sec / 1e3, 1) << "k req/s ("
                << fmt_double(
                       r.batched_per_sec / std::max(r.single_per_sec, 1.0),
                       2)
                << "x)\n  completed " << r.stats.completed << "  rejected "
                << r.stats.rejected << "  ingress_batches "
                << r.stats.ingress_batches << "  ingress_cells "
                << r.stats.ingress_cells << "\n  tokens " << r.report.total
                << "  f_nl " << fmt_double(r.report.f_nl, 4) << "  f_nsc "
                << fmt_double(r.report.f_nsc, 4) << "\n  audit_exact "
                << (r.audit.exact ? "yes" : "NO") << "  gap_free "
                << (r.audit.gap_free ? "yes" : "NO")
                << "  counting_violation "
                << fmt_double(r.degradation.counting_violation, 0)
                << "  gate " << (r.gate_ok ? "PASS" : "FAIL") << "\n";
    }
    // The E15 acceptance gate: a fault-free batched run must count
    // perfectly — residue audit exact + gap-free, zero violations.
    return r.gate_ok ? 0 : 1;
  }

  // --- elastic mode (E14; exclusive like --soak) -----------------------
  if (args.get_bool("elastic", false)) {
    const auto elastic_ms = static_cast<std::uint64_t>(
        args.get_int("elastic-ms", smoke ? 3000 : 15000));
    const std::uint32_t lg_w = log2_floor(width);
    auto max_level = static_cast<std::uint32_t>(
        args.get_int("elastic-max-level", std::min<std::uint32_t>(lg_w, 2)));
    max_level = std::min(max_level, lg_w);
    const bool controller = !args.get_bool("no-controller", false);
    double base_rate = args.get_double("elastic-rate", 0.0);
    if (base_rate <= 0.0) {
      // Saturation probe at level 0 (one shard, recorded — the elastic
      // run records too); the diurnal peak reaches 1.6x base, so base
      // at ~45% of the single-shard rate makes the peak oversubscribe
      // one shard while the deepest level still has headroom.
      engine::RunSpec probe;
      probe.backend = "service";
      probe.net = &net;
      probe.threads = clients;
      probe.ops_per_thread = 500;
      probe.service_shards = 1;
      probe.service_batch = batch;
      probe.seed = seed;
      const engine::RunResult res = engine::run_backend(probe);
      if (!res.ok()) {
        std::cerr << "elastic saturation probe: " << res.error << "\n";
        return 1;
      }
      base_rate = std::max(res.metric("ops_per_sec") * 0.45, 5000.0);
    }
    if (!json) {
      std::cout << "E14: elastic width — " << elastic_ms << " ms diurnal "
                << "ramp, levels 0.." << max_level << " (1.."
                << (1u << max_level) << " shards), base rate "
                << fmt_double(base_rate / 1e3, 1) << "k/s"
                << (controller ? ", adaptive controller on" : "") << "\n";
    }
    const ElasticResult r = run_elastic(net, max_level, batch, base_rate,
                                        elastic_ms, seed, controller);
    if (json) {
      std::cout << json_elastic(r) << "\n";
    } else {
      std::cout << "\n  submissions " << r.submissions << "  completed "
                << r.stats.completed << "  shed " << r.stats.shed
                << "  rejected " << r.stats.rejected << "\n  epochs "
                << r.stats.epochs << "  splits " << r.stats.splits
                << "  merges " << r.stats.merges << "  forced "
                << r.forced_resizes << "  final_level " << r.stats.final_level
                << "\n  audit_exact " << (r.audit.exact ? "yes" : "NO")
                << "  gap_free " << (r.audit.gap_free ? "yes" : "NO")
                << "  epochs_ok " << (r.epochs_ok ? "yes" : "NO") << "\n\n";
      TablePrinter et({"epoch", "level", "shards", "tickets", "completed",
                       "ok", "F_nl", "bound_nl", "F_nsc", "bound_nsc",
                       "p99 us"});
      for (const service::EpochStats& es : r.epochs) {
        et.add_row({std::to_string(es.index), std::to_string(es.level),
                    std::to_string(es.shards), std::to_string(es.tickets),
                    std::to_string(es.completed), es.ok() ? "yes" : "NO",
                    fmt_double(es.f_nl, 4), fmt_double(es.f_nl_bound, 4),
                    fmt_double(es.f_nsc, 4), fmt_double(es.f_nsc_bound, 4),
                    fmt_double(us(es.p99_ns), 1)});
      }
      et.print(std::cout);
      std::cout << "\nNote: the Cor 5.12/5.13 columns are ADVERSARIAL lower "
                   "bounds at each epoch's split level — an adversary can "
                   "force at least that fraction; a benign schedule may "
                   "measure anywhere in [0, 1].\n";
    }
    // The E14 acceptance gate: >= 2 splits, >= 2 merges, and the residue
    // audit exact + gap-free across every epoch boundary.
    return r.gate_ok ? 0 : 1;
  }

  // --- soak mode (exclusive: runs instead of the E12 sections) ---------
  if (args.get_bool("soak", false)) {
    const auto soak_ms = static_cast<std::uint64_t>(
        args.get_int("soak-ms", smoke ? 4000 : 20000));
    const auto soak_shards = static_cast<std::uint32_t>(
        args.get_int("soak-shards", shard_counts.back()));
    double base_rate = args.get_double("soak-rate", 0.0);
    if (base_rate <= 0.0) {
      // Quick closed-loop saturation probe; soak offers ~30% of it so
      // the steady phase leaves headroom for the diurnal peak (1.7x)
      // and the chaos bursts to push the service into shedding.
      engine::RunSpec probe;
      probe.backend = "service";
      probe.net = &net;
      probe.threads = clients;
      probe.ops_per_thread = 500;
      probe.service_shards = soak_shards;
      probe.service_batch = batch;
      probe.record_trace = false;
      probe.seed = seed;
      const engine::RunResult res = engine::run_backend(probe);
      if (!res.ok()) {
        std::cerr << "soak saturation probe: " << res.error << "\n";
        return 1;
      }
      base_rate = std::max(res.metric("ops_per_sec") * 0.30, 5000.0);
    }
    if (!json) {
      std::cout << "E13: self-healing soak — " << soak_ms << " ms, "
                << soak_shards << " shards, base rate "
                << fmt_double(base_rate / 1e3, 1) << "k/s\n";
    }
    const SoakResult r =
        run_soak(net, soak_shards, batch, base_rate, soak_ms, seed);
    if (json) {
      std::cout << json_soak(r) << "\n";
    } else {
      std::cout << "\n  submitted " << r.stats.submitted << "  completed "
                << r.stats.completed << "  shed " << r.stats.shed
                << "  rejected " << r.stats.rejected << "\n  crashes "
                << r.stats.crashes << "  respawns " << r.stats.respawns
                << "  wedge_detections " << r.stats.wedge_detections
                << "  crash_lost " << r.stats.crash_lost << "  abandoned "
                << r.stats.abandoned << "\n  holes " << r.audit.holes
                << "  audit_exact " << (r.audit.exact ? "yes" : "NO")
                << "  gap_free " << (r.audit.gap_free ? "yes" : "NO")
                << "  counting_violation "
                << fmt_double(r.degradation.counting_violation, 0)
                << "\n  f_nl " << fmt_double(r.report.f_nl, 4) << "  f_nsc "
                << fmt_double(r.report.f_nsc, 4) << "  p50 "
                << fmt_double(us(r.stats.latency.p50()), 1) << " us  p99 "
                << fmt_double(us(r.stats.latency.p99()), 1)
                << " us\n  deadline clients: completed "
                << r.deadline_completed << "  timed_out "
                << r.deadline_timed_out << "  retries " << r.deadline_retries
                << "\n  chaos: " << r.chaos_desc << "\n";
    }
    // Gates (also applied by CI on the JSON): the audit must account
    // every hole exactly, and a hole-free run must count perfectly.
    if (!r.audit.exact || !r.fault_free_clean) return 1;
    return 0;
  }

  if (!json) {
    std::cout << "E12: counting-as-a-service — saturation, tail latency, "
                 "consistency\n\nwidth " << width << ", clients " << clients
              << ", ops/client " << ops << ", worker batch " << batch
              << "\n\n";
  }

  // --- saturation (closed loop, all rows via the engine registry) ------
  struct SatRow {
    std::string label;
    LatencyRow lat;
  };
  std::vector<SatRow> saturation;
  double service_sat = 0.0;  // best service rate, anchor for open loop

  for (const std::uint32_t shards : shard_counts) {
    engine::RunSpec spec;
    spec.backend = "service";
    spec.net = &net;
    spec.threads = clients;
    spec.ops_per_thread = ops;
    spec.service_shards = shards;
    spec.service_batch = batch;
    spec.record_trace = false;
    spec.seed = seed;
    const engine::RunResult res = engine::run_backend(spec);
    if (!res.ok()) {
      std::cerr << "service shards=" << shards << ": " << res.error << "\n";
      return 1;
    }
    LatencyRow row;
    row.ops_per_sec = res.metric("ops_per_sec");
    row.p50_us = res.metric("p50_us");
    row.p99_us = res.metric("p99_us");
    row.p999_us = res.metric("p999_us");
    service_sat = std::max(service_sat, row.ops_per_sec);
    saturation.push_back(
        {"service_shards" + std::to_string(shards), row});

    // The same closed loop through the batched ingress: requests ride
    // submit_batch(16), one ticket-range draw and at most min(16,
    // shards) queue cells per call.
    engine::RunSpec bspec = spec;
    bspec.service_client_batch = 16;
    const engine::RunResult bres = engine::run_backend(bspec);
    if (!bres.ok()) {
      std::cerr << "service shards=" << shards << " batched: " << bres.error
                << "\n";
      return 1;
    }
    LatencyRow brow;
    brow.ops_per_sec = bres.metric("ops_per_sec");
    brow.p50_us = bres.metric("p50_us");
    brow.p99_us = bres.metric("p99_us");
    brow.p999_us = bres.metric("p999_us");
    service_sat = std::max(service_sat, brow.ops_per_sec);
    saturation.push_back(
        {"service_shards" + std::to_string(shards) + "_batch16", brow});
  }

  struct Baseline {
    std::string label;
    std::string backend;
    const Network* bnet;
    std::uint32_t bwidth;
    std::uint32_t batch_size;
  };
  const Baseline baselines[] = {
      {"fetch_inc", "fetch_inc", nullptr, 0, 1},
      {"mcs", "mcs", nullptr, 0, 1},
      {"combining_tree16", "combining_tree", nullptr, 16, 1},
      {"diffracting_tree8", "diffracting_tree", nullptr, 8, 1},
      {"concurrent_single", "concurrent", &net, 0, 1},
      {"concurrent_batched", "concurrent", &net, 0, batch},
  };
  for (const Baseline& b : baselines) {
    engine::RunSpec spec;
    spec.backend = b.backend;
    spec.net = b.bnet;
    if (b.bwidth > 0) spec.width = b.bwidth;
    spec.threads = clients;
    spec.ops_per_thread = ops;
    spec.batch_size = b.batch_size;
    spec.seed = seed;
    spec.record_trace = false;  // saturation: bare code path
    const engine::RunResult fast = engine::run_backend(spec);
    if (!fast.ok()) {
      std::cerr << b.label << ": " << fast.error << "\n";
      return 1;
    }
    // Latency percentiles need per-op timestamps: a second, recorded run
    // (smaller, so the recording clocks stay affordable). The batched
    // concurrent row has no per-token timestamps; reuse the single-token
    // recording for its percentiles.
    engine::RunSpec rec = spec;
    rec.batch_size = 1;
    rec.ops_per_thread = std::max<std::uint64_t>(ops / 4, 100);
    rec.record_trace = true;
    const engine::RunResult slow = engine::run_backend(rec);
    if (!slow.ok()) {
      std::cerr << b.label << " (recorded): " << slow.error << "\n";
      return 1;
    }
    LatencyRow row = trace_latency(slow);
    row.ops_per_sec = fast.metric("ops_per_sec");
    saturation.push_back({b.label, row});
  }

  // --- open loop -------------------------------------------------------
  struct OpenRow {
    std::string label;
    std::string arrivals;
    OpenLoopResult r;
  };
  std::vector<OpenRow> open_rows;
  const double fractions[] = {0.5, 0.9};
  const std::uint64_t open_ops = smoke ? 1500 : clients * ops;
  for (const std::uint32_t shards : shard_counts) {
    for (const double frac : fractions) {
      const double rate = std::max(service_sat * frac, 1000.0);
      open_rows.push_back(
          {"service_shards" + std::to_string(shards), "poisson",
           run_open_loop(net, shards, batch, rate, open_ops, 1, seed)});
      open_rows.push_back(
          {"service_shards" + std::to_string(shards), "bursty",
           run_open_loop(net, shards, batch, rate, open_ops, 64, seed)});
    }
  }

  // --- consistency (streaming analyzers attached to the live trace) ---
  struct ConsRow {
    std::uint32_t shards = 0;
    double f_nl = 0.0;
    double f_nsc = 0.0;
    std::uint64_t total = 0;
    std::uint64_t counting_violation = 0;
    double smoothness_gap = 0.0;
  };
  std::vector<ConsRow> cons_rows;
  for (const std::uint32_t shards : shard_counts) {
    engine::RunSpec spec;
    spec.backend = "service";
    spec.net = &net;
    spec.threads = clients;
    spec.ops_per_thread = smoke ? 200 : 1000;
    spec.service_shards = shards;
    spec.service_batch = batch;
    spec.seed = seed;
    spec.keep_trace = false;   // stream straight into the analyzers
    spec.fault.enabled = true;  // inert plan: requests the quiescent
                                // degradation report (all p = 0)
    const engine::RunResult res = engine::run_backend(spec);
    if (!res.ok()) {
      std::cerr << "service consistency shards=" << shards << ": "
                << res.error << "\n";
      return 1;
    }
    ConsRow row;
    row.shards = shards;
    row.f_nl = res.report.f_nl;
    row.f_nsc = res.report.f_nsc;
    row.total = res.report.total;
    row.counting_violation =
        static_cast<std::uint64_t>(res.metric("counting_violation"));
    row.smoothness_gap = res.metric("smoothness_gap");
    cons_rows.push_back(row);
  }

  // --- degradation under injected worker faults ------------------------
  struct DegRow {
    std::uint32_t shards = 0;
    double p_stall = 0.0;
    double p_abandon = 0.0;
    std::uint64_t dropped = 0;
    std::uint64_t stalls = 0;
    std::uint64_t counting_violation = 0;
    double p99_us = 0.0;
  };
  std::vector<DegRow> deg_rows;
  if (faults) {
    for (const std::uint32_t shards : shard_counts) {
      engine::RunSpec spec;
      spec.backend = "service";
      spec.net = &net;
      spec.threads = clients;
      spec.ops_per_thread = smoke ? 200 : 1000;
      spec.service_shards = shards;
      spec.service_batch = batch;
      spec.seed = seed;
      spec.keep_trace = false;
      spec.fault.enabled = true;
      spec.fault.p_thread_stall = 0.01;
      spec.fault.stall_ns = 100000;
      spec.fault.p_thread_abandon = 0.005;
      const engine::RunResult res = engine::run_backend(spec);
      if (!res.ok()) {
        std::cerr << "service degradation shards=" << shards << ": "
                  << res.error << "\n";
        return 1;
      }
      DegRow row;
      row.shards = shards;
      row.p_stall = spec.fault.p_thread_stall;
      row.p_abandon = spec.fault.p_thread_abandon;
      row.dropped =
          static_cast<std::uint64_t>(res.metric("fault_tokens_abandoned"));
      row.stalls = static_cast<std::uint64_t>(res.metric("fault_stalls"));
      row.counting_violation =
          static_cast<std::uint64_t>(res.metric("counting_violation"));
      row.p99_us = res.metric("p99_us");
      deg_rows.push_back(row);
    }
  }

  // --- output ----------------------------------------------------------
  if (json) {
    std::ostringstream os;
    os << "{\"width\":" << width << ",\"clients\":" << clients
       << ",\"worker_batch\":" << batch << ",\"saturation\":[";
    for (std::size_t i = 0; i < saturation.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"structure\":\"" << saturation[i].label << "\","
         << json_latency(saturation[i].lat) << "}";
    }
    os << "],\"open_loop\":[";
    for (std::size_t i = 0; i < open_rows.size(); ++i) {
      if (i > 0) os << ",";
      const OpenRow& r = open_rows[i];
      os << "{\"structure\":\"" << r.label << "\",\"arrivals\":\""
         << r.arrivals << "\",\"offered_per_sec\":"
         << fmt_double(r.r.offered_per_sec, 1)
         << ",\"achieved_per_sec\":" << fmt_double(r.r.achieved_per_sec, 1)
         << ",\"rejected\":" << r.r.rejected << ","
         << json_latency(r.r.lat) << "}";
    }
    os << "],\"consistency\":[";
    for (std::size_t i = 0; i < cons_rows.size(); ++i) {
      if (i > 0) os << ",";
      const ConsRow& r = cons_rows[i];
      os << "{\"shards\":" << r.shards << ",\"tokens\":" << r.total
         << ",\"f_nl\":" << fmt_double(r.f_nl, 4)
         << ",\"f_nsc\":" << fmt_double(r.f_nsc, 4)
         << ",\"counting_violation\":" << r.counting_violation
         << ",\"smoothness_gap\":" << fmt_double(r.smoothness_gap, 1) << "}";
    }
    os << "],\"degradation\":[";
    for (std::size_t i = 0; i < deg_rows.size(); ++i) {
      if (i > 0) os << ",";
      const DegRow& r = deg_rows[i];
      os << "{\"shards\":" << r.shards << ",\"p_stall\":"
         << fmt_double(r.p_stall, 3) << ",\"p_abandon\":"
         << fmt_double(r.p_abandon, 3) << ",\"dropped\":" << r.dropped
         << ",\"stalls\":" << r.stalls << ",\"counting_violation\":"
         << r.counting_violation << ",\"p99_us\":" << fmt_double(r.p99_us, 3)
         << "}";
    }
    os << "]}";
    std::cout << os.str() << "\n";
    return 0;
  }

  std::cout << "saturation (closed loop, " << clients << " clients):\n";
  TablePrinter sat({"structure", "ops/sec", "p50 us", "p99 us", "p999 us"});
  for (const SatRow& r : saturation) {
    sat.add_row({r.label, fmt_double(r.lat.ops_per_sec / 1e6, 3) + "M",
                 fmt_double(r.lat.p50_us, 1), fmt_double(r.lat.p99_us, 1),
                 fmt_double(r.lat.p999_us, 1)});
  }
  sat.print(std::cout);

  std::cout << "\nopen loop (latency from scheduled arrival):\n";
  TablePrinter ol({"structure", "arrivals", "offered/s", "achieved/s",
                   "rejected", "p50 us", "p99 us", "p999 us"});
  for (const OpenRow& r : open_rows) {
    ol.add_row({r.label, r.arrivals,
                fmt_double(r.r.offered_per_sec / 1e3, 1) + "k",
                fmt_double(r.r.achieved_per_sec / 1e3, 1) + "k",
                std::to_string(r.r.rejected), fmt_double(r.r.lat.p50_us, 1),
                fmt_double(r.r.lat.p99_us, 1),
                fmt_double(r.r.lat.p999_us, 1)});
  }
  ol.print(std::cout);

  std::cout << "\nconsistency at quiescence (streaming analyzers, live):\n";
  TablePrinter ct({"shards", "tokens", "F_nl", "F_nsc", "counting_violation",
                   "smoothness_gap"});
  for (const ConsRow& r : cons_rows) {
    ct.add_row({std::to_string(r.shards), std::to_string(r.total),
                fmt_double(r.f_nl, 4), fmt_double(r.f_nsc, 4),
                std::to_string(r.counting_violation),
                fmt_double(r.smoothness_gap, 1)});
  }
  ct.print(std::cout);

  if (!deg_rows.empty()) {
    std::cout << "\ndegradation under worker faults:\n";
    TablePrinter dt({"shards", "p_stall", "p_abandon", "dropped", "stalls",
                     "counting_violation", "p99 us"});
    for (const DegRow& r : deg_rows) {
      dt.add_row({std::to_string(r.shards), fmt_double(r.p_stall, 3),
                  fmt_double(r.p_abandon, 3), std::to_string(r.dropped),
                  std::to_string(r.stalls),
                  std::to_string(r.counting_violation),
                  fmt_double(r.p99_us, 1)});
    }
    dt.print(std::cout);
    std::cout << "\nNote: with N > 1 shards, dropped tickets unbalance the "
                 "residue classes and leave value holes (counting_violation "
                 "= 1) — the measured cost of faults under modular sharding "
                 "(Lemma 3.1 assumes every ticket completes). A single "
                 "shard has no residue classes to unbalance, so drops stay "
                 "counting-clean there.\n";
  }
  return 0;
}
