// E12 — Counting-as-a-service: the sharded service under closed-loop
// saturation and open-loop (Poisson / bursty) load.
//
//   bench_service [--width 8] [--clients 8] [--ops 2000] [--shards 1,2,4]
//                 [--batch 32] [--seed 1] [--smoke] [--json] [--no-faults]
//
// Four sections:
//   saturation   closed-loop throughput + latency percentiles for the
//                service at each shard count vs the baseline counters
//                (fetch&inc, MCS, combining tree, diffracting tree) and
//                the raw concurrent network (single-token and batched) —
//                every row driven through the engine registry.
//   open_loop    an open-system load generator offering Poisson and
//                bursty arrivals at a fraction of the measured
//                saturation rate. Latency is measured from the SCHEDULED
//                arrival time (coordinated-omission-free): queue wait
//                counts, a stalled service cannot hide behind a stalled
//                generator.
//   consistency  a recorded service run with the streaming analyzers
//                attached live: F_nl / F_nsc as measured, and the
//                quiescent counting check (Lemma 3.1 says the residue
//                router preserves gap-free counting when every accepted
//                ticket completes - counting_violation must be 0).
//   degradation  the same service under injected worker stalls and
//                abandons (src/fault plans): drop counts, latency
//                inflation, and the counting damage the drops cause.
//
// --smoke shrinks every section for CI; --json emits one machine-checked
// object with all sections.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "service/histogram.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace cn;

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Busy-waits (yielding) until the steady clock reaches `deadline_ns`.
void wait_until_ns(std::uint64_t deadline_ns) {
  while (now_ns() < deadline_ns) std::this_thread::yield();
}

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

struct LatencyRow {
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

/// Percentiles of (t_out - t_in) over a recorded engine trace, via the
/// same histogram the service uses.
LatencyRow trace_latency(const engine::RunResult& res) {
  LatencyRow row;
  row.ops_per_sec = res.metric("ops_per_sec");
  service::LatencyHistogram h;
  for (const TokenRecord& rec : res.trace) {
    const double sec = rec.t_out - rec.t_in;
    h.record(sec > 0 ? static_cast<std::uint64_t>(sec * 1e9) : 0);
  }
  row.p50_us = us(h.p50());
  row.p99_us = us(h.p99());
  row.p999_us = us(h.p999());
  return row;
}

struct OpenLoopResult {
  double offered_per_sec = 0.0;
  double achieved_per_sec = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  LatencyRow lat;
};

/// Open-loop run: one generator thread submits `total_ops` fire-and-
/// forget requests on a precomputed arrival schedule (Poisson:
/// exponential inter-arrival; bursty: back-to-back bursts of
/// `burst_size` every burst_size/rate seconds). A full queue rejects
/// the arrival — open-loop clients never retry or block.
OpenLoopResult run_open_loop(const Network& net, std::uint32_t shards,
                             std::uint32_t batch, double rate_per_sec,
                             std::uint64_t total_ops, std::uint32_t burst_size,
                             std::uint64_t seed) {
  service::ServiceConfig cfg;
  cfg.shards = shards;
  cfg.max_batch = batch;
  cfg.net = &net;
  cfg.seed = seed;
  service::CountingService svc(cfg);
  svc.start();

  Xoshiro256 rng(seed ^ 0xa5a5a5a5ULL);
  const double mean_gap_ns = 1e9 / rate_per_sec;
  const std::uint64_t t0 = now_ns() + 1000000;  // 1 ms of lead time
  double next_ns = 0.0;
  std::uint64_t rejected = 0;
  for (std::uint64_t k = 0; k < total_ops; ++k) {
    if (burst_size <= 1) {
      next_ns += -std::log(1.0 - rng.unit()) * mean_gap_ns;
    } else if (k % burst_size == 0 && k > 0) {
      next_ns += mean_gap_ns * burst_size;  // whole burst arrives at once
    }
    const std::uint64_t scheduled = t0 + static_cast<std::uint64_t>(next_ns);
    wait_until_ns(scheduled);
    // Latency is anchored at the SCHEDULED arrival: if the generator
    // fell behind (overload), the wait it could not perform still counts
    // against the service, not in its favor.
    if (!svc.try_submit(0, scheduled)) ++rejected;
  }
  const std::uint64_t gen_elapsed = now_ns() - t0;
  svc.stop();

  const service::ServiceStats& st = svc.stats();
  OpenLoopResult out;
  out.offered_per_sec = rate_per_sec;
  out.submitted = st.submitted;
  out.rejected = rejected;
  out.achieved_per_sec =
      gen_elapsed > 0
          ? static_cast<double>(st.completed) * 1e9 / gen_elapsed
          : 0.0;
  out.lat.ops_per_sec = out.achieved_per_sec;
  out.lat.p50_us = us(st.latency.p50());
  out.lat.p99_us = us(st.latency.p99());
  out.lat.p999_us = us(st.latency.p999());
  return out;
}

std::string json_latency(const LatencyRow& row) {
  std::ostringstream os;
  os << "\"ops_per_sec\":" << fmt_double(row.ops_per_sec, 1)
     << ",\"p50_us\":" << fmt_double(row.p50_us, 3)
     << ",\"p99_us\":" << fmt_double(row.p99_us, 3)
     << ",\"p999_us\":" << fmt_double(row.p999_us, 3);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const bool json = args.get_bool("json", false);
  const bool faults = !args.get_bool("no-faults", false);
  const auto width = static_cast<std::uint32_t>(args.get_int("width", 8));
  const auto clients =
      static_cast<std::uint32_t>(args.get_int("clients", smoke ? 4 : 8));
  const auto ops = static_cast<std::uint64_t>(
      args.get_int("ops", smoke ? 400 : 2000));
  const auto batch =
      static_cast<std::uint32_t>(args.get_int("batch", 32));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::vector<std::uint32_t> shard_counts;
  {
    std::istringstream ss(args.get("shards", smoke ? "1,2" : "1,2,4"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      shard_counts.push_back(
          static_cast<std::uint32_t>(std::stoul(tok)));
    }
  }

  const Network net = make_bitonic(width);
  if (!json) {
    std::cout << "E12: counting-as-a-service — saturation, tail latency, "
                 "consistency\n\nwidth " << width << ", clients " << clients
              << ", ops/client " << ops << ", worker batch " << batch
              << "\n\n";
  }

  // --- saturation (closed loop, all rows via the engine registry) ------
  struct SatRow {
    std::string label;
    LatencyRow lat;
  };
  std::vector<SatRow> saturation;
  double service_sat = 0.0;  // best service rate, anchor for open loop

  for (const std::uint32_t shards : shard_counts) {
    engine::RunSpec spec;
    spec.backend = "service";
    spec.net = &net;
    spec.threads = clients;
    spec.ops_per_thread = ops;
    spec.service_shards = shards;
    spec.service_batch = batch;
    spec.record_trace = false;
    spec.seed = seed;
    const engine::RunResult res = engine::run_backend(spec);
    if (!res.ok()) {
      std::cerr << "service shards=" << shards << ": " << res.error << "\n";
      return 1;
    }
    LatencyRow row;
    row.ops_per_sec = res.metric("ops_per_sec");
    row.p50_us = res.metric("p50_us");
    row.p99_us = res.metric("p99_us");
    row.p999_us = res.metric("p999_us");
    service_sat = std::max(service_sat, row.ops_per_sec);
    saturation.push_back(
        {"service_shards" + std::to_string(shards), row});
  }

  struct Baseline {
    std::string label;
    std::string backend;
    const Network* bnet;
    std::uint32_t bwidth;
    std::uint32_t batch_size;
  };
  const Baseline baselines[] = {
      {"fetch_inc", "fetch_inc", nullptr, 0, 1},
      {"mcs", "mcs", nullptr, 0, 1},
      {"combining_tree16", "combining_tree", nullptr, 16, 1},
      {"diffracting_tree8", "diffracting_tree", nullptr, 8, 1},
      {"concurrent_single", "concurrent", &net, 0, 1},
      {"concurrent_batched", "concurrent", &net, 0, batch},
  };
  for (const Baseline& b : baselines) {
    engine::RunSpec spec;
    spec.backend = b.backend;
    spec.net = b.bnet;
    if (b.bwidth > 0) spec.width = b.bwidth;
    spec.threads = clients;
    spec.ops_per_thread = ops;
    spec.batch_size = b.batch_size;
    spec.seed = seed;
    spec.record_trace = false;  // saturation: bare code path
    const engine::RunResult fast = engine::run_backend(spec);
    if (!fast.ok()) {
      std::cerr << b.label << ": " << fast.error << "\n";
      return 1;
    }
    // Latency percentiles need per-op timestamps: a second, recorded run
    // (smaller, so the recording clocks stay affordable). The batched
    // concurrent row has no per-token timestamps; reuse the single-token
    // recording for its percentiles.
    engine::RunSpec rec = spec;
    rec.batch_size = 1;
    rec.ops_per_thread = std::max<std::uint64_t>(ops / 4, 100);
    rec.record_trace = true;
    const engine::RunResult slow = engine::run_backend(rec);
    if (!slow.ok()) {
      std::cerr << b.label << " (recorded): " << slow.error << "\n";
      return 1;
    }
    LatencyRow row = trace_latency(slow);
    row.ops_per_sec = fast.metric("ops_per_sec");
    saturation.push_back({b.label, row});
  }

  // --- open loop -------------------------------------------------------
  struct OpenRow {
    std::string label;
    std::string arrivals;
    OpenLoopResult r;
  };
  std::vector<OpenRow> open_rows;
  const double fractions[] = {0.5, 0.9};
  const std::uint64_t open_ops = smoke ? 1500 : clients * ops;
  for (const std::uint32_t shards : shard_counts) {
    for (const double frac : fractions) {
      const double rate = std::max(service_sat * frac, 1000.0);
      open_rows.push_back(
          {"service_shards" + std::to_string(shards), "poisson",
           run_open_loop(net, shards, batch, rate, open_ops, 1, seed)});
      open_rows.push_back(
          {"service_shards" + std::to_string(shards), "bursty",
           run_open_loop(net, shards, batch, rate, open_ops, 64, seed)});
    }
  }

  // --- consistency (streaming analyzers attached to the live trace) ---
  struct ConsRow {
    std::uint32_t shards = 0;
    double f_nl = 0.0;
    double f_nsc = 0.0;
    std::uint64_t total = 0;
    std::uint64_t counting_violation = 0;
    double smoothness_gap = 0.0;
  };
  std::vector<ConsRow> cons_rows;
  for (const std::uint32_t shards : shard_counts) {
    engine::RunSpec spec;
    spec.backend = "service";
    spec.net = &net;
    spec.threads = clients;
    spec.ops_per_thread = smoke ? 200 : 1000;
    spec.service_shards = shards;
    spec.service_batch = batch;
    spec.seed = seed;
    spec.keep_trace = false;   // stream straight into the analyzers
    spec.fault.enabled = true;  // inert plan: requests the quiescent
                                // degradation report (all p = 0)
    const engine::RunResult res = engine::run_backend(spec);
    if (!res.ok()) {
      std::cerr << "service consistency shards=" << shards << ": "
                << res.error << "\n";
      return 1;
    }
    ConsRow row;
    row.shards = shards;
    row.f_nl = res.report.f_nl;
    row.f_nsc = res.report.f_nsc;
    row.total = res.report.total;
    row.counting_violation =
        static_cast<std::uint64_t>(res.metric("counting_violation"));
    row.smoothness_gap = res.metric("smoothness_gap");
    cons_rows.push_back(row);
  }

  // --- degradation under injected worker faults ------------------------
  struct DegRow {
    std::uint32_t shards = 0;
    double p_stall = 0.0;
    double p_abandon = 0.0;
    std::uint64_t dropped = 0;
    std::uint64_t stalls = 0;
    std::uint64_t counting_violation = 0;
    double p99_us = 0.0;
  };
  std::vector<DegRow> deg_rows;
  if (faults) {
    for (const std::uint32_t shards : shard_counts) {
      engine::RunSpec spec;
      spec.backend = "service";
      spec.net = &net;
      spec.threads = clients;
      spec.ops_per_thread = smoke ? 200 : 1000;
      spec.service_shards = shards;
      spec.service_batch = batch;
      spec.seed = seed;
      spec.keep_trace = false;
      spec.fault.enabled = true;
      spec.fault.p_thread_stall = 0.01;
      spec.fault.stall_ns = 100000;
      spec.fault.p_thread_abandon = 0.005;
      const engine::RunResult res = engine::run_backend(spec);
      if (!res.ok()) {
        std::cerr << "service degradation shards=" << shards << ": "
                  << res.error << "\n";
        return 1;
      }
      DegRow row;
      row.shards = shards;
      row.p_stall = spec.fault.p_thread_stall;
      row.p_abandon = spec.fault.p_thread_abandon;
      row.dropped =
          static_cast<std::uint64_t>(res.metric("fault_tokens_abandoned"));
      row.stalls = static_cast<std::uint64_t>(res.metric("fault_stalls"));
      row.counting_violation =
          static_cast<std::uint64_t>(res.metric("counting_violation"));
      row.p99_us = res.metric("p99_us");
      deg_rows.push_back(row);
    }
  }

  // --- output ----------------------------------------------------------
  if (json) {
    std::ostringstream os;
    os << "{\"width\":" << width << ",\"clients\":" << clients
       << ",\"worker_batch\":" << batch << ",\"saturation\":[";
    for (std::size_t i = 0; i < saturation.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"structure\":\"" << saturation[i].label << "\","
         << json_latency(saturation[i].lat) << "}";
    }
    os << "],\"open_loop\":[";
    for (std::size_t i = 0; i < open_rows.size(); ++i) {
      if (i > 0) os << ",";
      const OpenRow& r = open_rows[i];
      os << "{\"structure\":\"" << r.label << "\",\"arrivals\":\""
         << r.arrivals << "\",\"offered_per_sec\":"
         << fmt_double(r.r.offered_per_sec, 1)
         << ",\"achieved_per_sec\":" << fmt_double(r.r.achieved_per_sec, 1)
         << ",\"rejected\":" << r.r.rejected << ","
         << json_latency(r.r.lat) << "}";
    }
    os << "],\"consistency\":[";
    for (std::size_t i = 0; i < cons_rows.size(); ++i) {
      if (i > 0) os << ",";
      const ConsRow& r = cons_rows[i];
      os << "{\"shards\":" << r.shards << ",\"tokens\":" << r.total
         << ",\"f_nl\":" << fmt_double(r.f_nl, 4)
         << ",\"f_nsc\":" << fmt_double(r.f_nsc, 4)
         << ",\"counting_violation\":" << r.counting_violation
         << ",\"smoothness_gap\":" << fmt_double(r.smoothness_gap, 1) << "}";
    }
    os << "],\"degradation\":[";
    for (std::size_t i = 0; i < deg_rows.size(); ++i) {
      if (i > 0) os << ",";
      const DegRow& r = deg_rows[i];
      os << "{\"shards\":" << r.shards << ",\"p_stall\":"
         << fmt_double(r.p_stall, 3) << ",\"p_abandon\":"
         << fmt_double(r.p_abandon, 3) << ",\"dropped\":" << r.dropped
         << ",\"stalls\":" << r.stalls << ",\"counting_violation\":"
         << r.counting_violation << ",\"p99_us\":" << fmt_double(r.p99_us, 3)
         << "}";
    }
    os << "]}";
    std::cout << os.str() << "\n";
    return 0;
  }

  std::cout << "saturation (closed loop, " << clients << " clients):\n";
  TablePrinter sat({"structure", "ops/sec", "p50 us", "p99 us", "p999 us"});
  for (const SatRow& r : saturation) {
    sat.add_row({r.label, fmt_double(r.lat.ops_per_sec / 1e6, 3) + "M",
                 fmt_double(r.lat.p50_us, 1), fmt_double(r.lat.p99_us, 1),
                 fmt_double(r.lat.p999_us, 1)});
  }
  sat.print(std::cout);

  std::cout << "\nopen loop (latency from scheduled arrival):\n";
  TablePrinter ol({"structure", "arrivals", "offered/s", "achieved/s",
                   "rejected", "p50 us", "p99 us", "p999 us"});
  for (const OpenRow& r : open_rows) {
    ol.add_row({r.label, r.arrivals,
                fmt_double(r.r.offered_per_sec / 1e3, 1) + "k",
                fmt_double(r.r.achieved_per_sec / 1e3, 1) + "k",
                std::to_string(r.r.rejected), fmt_double(r.r.lat.p50_us, 1),
                fmt_double(r.r.lat.p99_us, 1),
                fmt_double(r.r.lat.p999_us, 1)});
  }
  ol.print(std::cout);

  std::cout << "\nconsistency at quiescence (streaming analyzers, live):\n";
  TablePrinter ct({"shards", "tokens", "F_nl", "F_nsc", "counting_violation",
                   "smoothness_gap"});
  for (const ConsRow& r : cons_rows) {
    ct.add_row({std::to_string(r.shards), std::to_string(r.total),
                fmt_double(r.f_nl, 4), fmt_double(r.f_nsc, 4),
                std::to_string(r.counting_violation),
                fmt_double(r.smoothness_gap, 1)});
  }
  ct.print(std::cout);

  if (!deg_rows.empty()) {
    std::cout << "\ndegradation under worker faults:\n";
    TablePrinter dt({"shards", "p_stall", "p_abandon", "dropped", "stalls",
                     "counting_violation", "p99 us"});
    for (const DegRow& r : deg_rows) {
      dt.add_row({std::to_string(r.shards), fmt_double(r.p_stall, 3),
                  fmt_double(r.p_abandon, 3), std::to_string(r.dropped),
                  std::to_string(r.stalls),
                  std::to_string(r.counting_violation),
                  fmt_double(r.p99_us, 1)});
    }
    dt.print(std::cout);
    std::cout << "\nNote: with N > 1 shards, dropped tickets unbalance the "
                 "residue classes and leave value holes (counting_violation "
                 "= 1) — the measured cost of faults under modular sharding "
                 "(Lemma 3.1 assumes every ticket completes). A single "
                 "shard has no residue classes to unbalance, so drops stay "
                 "counting-clean there.\n";
  }
  return 0;
}
