// Microbenchmarks (google-benchmark): per-operation cost of the building
// blocks — shared-memory balancer traversal, full network increments by
// width and construction, the sequential engine, the timed simulator,
// and the experiment engine's dispatch + sweep overhead on top of them.
#include <benchmark/benchmark.h>

#include "baselines/diffracting_tree.hpp"
#include "baselines/fetch_inc_counter.hpp"
#include "concurrent/concurrent_network.hpp"
#include "core/constructions.hpp"
#include "core/sequential.hpp"
#include "core/valency.hpp"
#include "engine/engine.hpp"
#include "sim/adversary.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"

namespace {

using namespace cn;

void BM_FetchInc(benchmark::State& state) {
  FetchIncCounter c;
  for (auto _ : state) benchmark::DoNotOptimize(c.next());
}
BENCHMARK(BM_FetchInc);

void BM_BitonicIncrement(benchmark::State& state) {
  const Network topo = make_bitonic(static_cast<std::uint32_t>(state.range(0)));
  ConcurrentNetwork net(topo);
  std::uint32_t src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.increment(src));
    src = (src + 1) % topo.fan_in();
  }
  state.SetLabel("depth=" + std::to_string(topo.depth()));
}
BENCHMARK(BM_BitonicIncrement)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_PeriodicIncrement(benchmark::State& state) {
  const Network topo = make_periodic(static_cast<std::uint32_t>(state.range(0)));
  ConcurrentNetwork net(topo);
  std::uint32_t src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.increment(src));
    src = (src + 1) % topo.fan_in();
  }
  state.SetLabel("depth=" + std::to_string(topo.depth()));
}
BENCHMARK(BM_PeriodicIncrement)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_DiffractingTreeIncrement(benchmark::State& state) {
  DiffractingTree tree(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(tree.next(0));
}
BENCHMARK(BM_DiffractingTreeIncrement)->Arg(4)->Arg(8)->Arg(16);

void BM_SequentialEngineTraversal(benchmark::State& state) {
  const Network topo = make_bitonic(static_cast<std::uint32_t>(state.range(0)));
  NetworkState engine(topo);
  TokenId next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.shepherd(next, next, next % topo.fan_in()));
    ++next;
  }
}
BENCHMARK(BM_SequentialEngineTraversal)->Arg(8)->Arg(32);

void BM_SimulateRandomWorkload(benchmark::State& state) {
  const Network topo = make_bitonic(8);
  Xoshiro256 rng(1);
  WorkloadSpec spec;
  spec.processes = 8;
  spec.tokens_per_process = 8;
  for (auto _ : state) {
    const TimedExecution exec = generate_workload(topo, spec, rng);
    benchmark::DoNotOptimize(simulate(exec));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulateRandomWorkload);

void BM_WaveConstruction(benchmark::State& state) {
  const Network topo = make_bitonic(static_cast<std::uint32_t>(state.range(0)));
  const SplitAnalysis split(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_wave_execution(topo, split, {.ell = 1}));
  }
}
BENCHMARK(BM_WaveConstruction)->Arg(8)->Arg(32);

void BM_SplitAnalysis(benchmark::State& state) {
  const Network topo = make_periodic(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitAnalysis(topo));
  }
}
BENCHMARK(BM_SplitAnalysis)->Arg(8)->Arg(32);

// Engine dispatch on top of BM_SimulateRandomWorkload's work: registry
// lookup, RunSpec plumbing, and the consistency analysis per run.
void BM_EngineSimulatorRun(benchmark::State& state) {
  const Network topo = make_bitonic(8);
  engine::RunSpec spec;
  spec.net = &topo;
  spec.processes = 8;
  spec.ops_per_process = 8;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    spec.seed = seed++;
    benchmark::DoNotOptimize(engine::run_backend(spec));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EngineSimulatorRun);

// Whole sweeps through the parallel sweeper, by worker count: the
// scaling the bench binaries inherit from --threads.
void BM_EngineSweep(benchmark::State& state) {
  const Network topo = make_bitonic(8);
  engine::SweepSpec sweep;
  sweep.base.net = &topo;
  sweep.base.processes = 8;
  sweep.base.ops_per_process = 4;
  sweep.base.c_max = 3.0;
  sweep.trials = 64;
  sweep.threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::sweep_stats(sweep));
  }
  state.SetItemsProcessed(state.iterations() * sweep.trials);
}
BENCHMARK(BM_EngineSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
