// Microbenchmarks (google-benchmark): per-operation cost of the building
// blocks — shared-memory balancer traversal, full network increments by
// width and construction, the sequential engine (compiled fast path vs
// the preserved graph-walking reference), the timed simulator, and the
// experiment engine's dispatch + sweep overhead on top of them.
//
// Two modes:
//   * default: google-benchmark over the registered BM_* cases; traversal
//     and engine benches report steps/sec and trials/sec via items/sec.
//   * --json [--out=FILE] [--min-seconds=S]: hand-rolled calibrated
//     measurements of the reference-vs-compiled traversal rate, the
//     wave-vs-compiled traversal rate, and the fresh-context-vs-reused-
//     arena trial rate, written as JSON (default BENCH_micro.json). This
//     is the tracked perf baseline; see EXPERIMENTS.md for how to read
//     it. Adding --check [--baseline=FILE] [--check_tolerance=T] compares
//     the RATIO metrics (every *_speedup / *_over_* key) of the fresh run
//     against the committed baseline and fails — with a per-metric diff —
//     when one drops more than T below it (fraction in [0,1), default
//     0.15); absolute rates are machine-dependent and are not gated.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "baselines/diffracting_tree.hpp"
#include "baselines/fetch_inc_counter.hpp"
#include "bench_common.hpp"
#include "concurrent/concurrent_network.hpp"
#include "concurrent/harness.hpp"
#include "core/compiled.hpp"
#include "core/constructions.hpp"
#include "core/reference_state.hpp"
#include "core/sequential.hpp"
#include "core/valency.hpp"
#include "core/wave.hpp"
#include "engine/engine.hpp"
#include "service/client.hpp"
#include "service/service.hpp"
#include "sim/adversary.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"
#include "trace/consistency.hpp"
#include "trace/streaming.hpp"

namespace {

using namespace cn;

/// Token ids index a per-state vector, so state memory grows with the
/// largest id. Resetting (or rebuilding) the state every batch keeps the
/// long-running traversal loops at a bounded footprint.
constexpr std::uint32_t kTraversalBatch = 1u << 16;

void BM_FetchInc(benchmark::State& state) {
  FetchIncCounter c;
  for (auto _ : state) benchmark::DoNotOptimize(c.next());
}
BENCHMARK(BM_FetchInc);

void BM_BitonicIncrement(benchmark::State& state) {
  const Network topo = make_bitonic(static_cast<std::uint32_t>(state.range(0)));
  ConcurrentNetwork net(topo);
  std::uint32_t src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.increment(src));
    src = (src + 1) % topo.fan_in();
  }
  state.SetLabel("depth=" + std::to_string(topo.depth()));
}
BENCHMARK(BM_BitonicIncrement)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_PeriodicIncrement(benchmark::State& state) {
  const Network topo = make_periodic(static_cast<std::uint32_t>(state.range(0)));
  ConcurrentNetwork net(topo);
  std::uint32_t src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.increment(src));
    src = (src + 1) % topo.fan_in();
  }
  state.SetLabel("depth=" + std::to_string(topo.depth()));
}
BENCHMARK(BM_PeriodicIncrement)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_DiffractingTreeIncrement(benchmark::State& state) {
  DiffractingTree tree(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(tree.next(0));
}
BENCHMARK(BM_DiffractingTreeIncrement)->Arg(4)->Arg(8)->Arg(16);

/// Transitions (balancer hops + the counter step) per token: the unit of
/// the traversal benches' items/sec, measured once from a recorded run.
std::size_t hops_per_token(const Network& topo) {
  NetworkState probe(topo);
  probe.set_recording(true);
  probe.shepherd(0, 0, 0);
  return probe.log().size();
}

// Compiled fast path: flat routing tables, arena reset between batches.
void BM_SequentialEngineTraversal(benchmark::State& state) {
  const Network topo = make_bitonic(static_cast<std::uint32_t>(state.range(0)));
  const std::size_t hops = hops_per_token(topo);
  const std::uint32_t src_mask = topo.fan_in() - 1;  // fan-in is pow2
  NetworkState engine(topo);
  TokenId next = 0;
  for (auto _ : state) {
    if (next == kTraversalBatch) {
      next = 0;
      engine.reset();
    }
    benchmark::DoNotOptimize(engine.shepherd(next, next, next & src_mask));
    ++next;
  }
  state.SetItemsProcessed(state.iterations() * hops);
  state.SetLabel("steps/sec (items); hops/token=" + std::to_string(hops));
}
BENCHMARK(BM_SequentialEngineTraversal)->Arg(8)->Arg(32);

// The preserved graph-walking engine (core/reference_state.hpp): the
// "before" side of the compiled fast path's steps/sec comparison.
void BM_ReferenceEngineTraversal(benchmark::State& state) {
  const Network topo = make_bitonic(static_cast<std::uint32_t>(state.range(0)));
  const std::size_t hops = hops_per_token(topo);
  const std::uint32_t src_mask = topo.fan_in() - 1;  // fan-in is pow2
  auto engine = std::make_unique<ReferenceNetworkState>(topo);
  TokenId next = 0;
  for (auto _ : state) {
    if (next == kTraversalBatch) {
      next = 0;
      engine = std::make_unique<ReferenceNetworkState>(topo);
    }
    benchmark::DoNotOptimize(engine->shepherd(next, next, next & src_mask));
    ++next;
  }
  state.SetItemsProcessed(state.iterations() * hops);
  state.SetLabel("steps/sec (items); hops/token=" + std::to_string(hops));
}
BENCHMARK(BM_ReferenceEngineTraversal)->Arg(8)->Arg(32);

// Width-specialized wave traversal (core/wave.hpp): W tokens enter as
// one wave and cross the network level-by-level over the constexpr-width
// slot tables. Items are steps, directly comparable to the scalar
// traversal benches above.
template <std::uint32_t W>
void BM_WaveEngineTraversal(benchmark::State& state) {
  const Network topo = make_bitonic(W);
  const std::size_t hops = hops_per_token(topo);
  const CompiledNetwork compiled(topo);
  const WavePlan plan(compiled);
  const auto waves = WidthWaves<W>::try_build(plan);
  CompiledState cstate(compiled);
  std::array<TokenCursor, W> wave{};
  std::array<Value, W> values{};
  std::uint64_t tokens = 0;
  for (auto _ : state) {
    if (tokens >= kTraversalBatch) {
      tokens = 0;
      cstate.reset();
    }
    for (std::uint32_t i = 0; i < W; ++i) {
      wave[i] = TokenCursor{waves->entry_slot(i), i};
      ++cstate.source_count[i];
    }
    for (std::uint32_t l = 0; l < waves->depth(); ++l) {
      waves->step_level(l, cstate, wave);
    }
    waves->step_counters(cstate, wave, values);
    benchmark::DoNotOptimize(values);
    tokens += W;
  }
  state.SetItemsProcessed(state.iterations() * W * hops);
  state.SetLabel("steps/sec (items); hops/token=" + std::to_string(hops));
}
BENCHMARK_TEMPLATE(BM_WaveEngineTraversal, 8);
BENCHMARK_TEMPLATE(BM_WaveEngineTraversal, 32);
BENCHMARK_TEMPLATE(BM_WaveEngineTraversal, 64);

void BM_SimulateRandomWorkload(benchmark::State& state) {
  const Network topo = make_bitonic(8);
  Xoshiro256 rng(1);
  WorkloadSpec spec;
  spec.processes = 8;
  spec.tokens_per_process = 8;
  for (auto _ : state) {
    const TimedExecution exec = generate_workload(topo, spec, rng);
    benchmark::DoNotOptimize(simulate(exec));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulateRandomWorkload);

// Same workload through a reused SimArena: compiled tables, heap storage,
// and per-token buffers survive across trials.
void BM_SimulateRandomWorkloadArena(benchmark::State& state) {
  const Network topo = make_bitonic(8);
  Xoshiro256 rng(1);
  WorkloadSpec spec;
  spec.processes = 8;
  spec.tokens_per_process = 8;
  SimArena arena;
  for (auto _ : state) {
    const TimedExecution exec = generate_workload(topo, spec, rng);
    benchmark::DoNotOptimize(simulate(exec, arena));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulateRandomWorkloadArena);

void BM_WaveConstruction(benchmark::State& state) {
  const Network topo = make_bitonic(static_cast<std::uint32_t>(state.range(0)));
  const SplitAnalysis split(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_wave_execution(topo, split, {.ell = 1}));
  }
}
BENCHMARK(BM_WaveConstruction)->Arg(8)->Arg(32);

void BM_SplitAnalysis(benchmark::State& state) {
  const Network topo = make_periodic(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitAnalysis(topo));
  }
}
BENCHMARK(BM_SplitAnalysis)->Arg(8)->Arg(32);

/// One large simulator trace (bitonic B(8), 8 processes, ~32k tokens)
/// reused by the analyzer benches, pre-sorted into the sink contract's
/// issue order so the streaming side measures only checker cost.
const Trace& analyzer_trace() {
  static const Trace* trace = [] {
    const Network topo = make_bitonic(8);
    Xoshiro256 rng(7);
    WorkloadSpec spec;
    spec.processes = 8;
    spec.tokens_per_process = 4096;
    spec.c_max = 3.0;
    spec.local_delay_max = 2.0;
    const TimedExecution exec = generate_workload(topo, spec, rng);
    auto* t = new Trace(simulate(exec).trace);
    std::sort(t->begin(), t->end(), issue_order_less);
    return t;
  }();
  return *trace;
}

// Batch analyzer: full three-pass analyze() over the materialized trace.
void BM_AnalyzeBatch(benchmark::State& state) {
  const Trace& trace = analyzer_trace();
  for (auto _ : state) benchmark::DoNotOptimize(analyze(trace));
  state.SetItemsProcessed(state.iterations() * trace.size());
  state.SetLabel("tokens/sec (items)");
}
BENCHMARK(BM_AnalyzeBatch);

// Streaming analyzer: one on_record per token through the incremental
// checker (the per-token cost a sink-mode sweep pays instead of analyze).
void BM_AnalyzeStreaming(benchmark::State& state) {
  const Trace& trace = analyzer_trace();
  StreamingConsistency checker;
  for (auto _ : state) {
    checker.reset();
    for (const TokenRecord& r : trace) checker.on_record(r);
    checker.finish();
    benchmark::DoNotOptimize(checker.report());
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
  state.SetLabel("tokens/sec (items)");
}
BENCHMARK(BM_AnalyzeStreaming);

// Engine dispatch on top of BM_SimulateRandomWorkload's work: registry
// lookup, RunSpec plumbing, and the consistency analysis per run. Items
// are trials, so items/sec reads as trials/sec.
void BM_EngineSimulatorRun(benchmark::State& state) {
  const Network topo = make_bitonic(8);
  engine::RunSpec spec;
  spec.net = &topo;
  spec.processes = 8;
  spec.ops_per_process = 8;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    spec.seed = seed++;
    benchmark::DoNotOptimize(engine::run_backend(spec));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("trials/sec (items), fresh context");
}
BENCHMARK(BM_EngineSimulatorRun);

// The sweep workers' configuration: one RunContext reused across trials.
void BM_EngineSimulatorRunArena(benchmark::State& state) {
  const Network topo = make_bitonic(8);
  engine::RunSpec spec;
  spec.net = &topo;
  spec.processes = 8;
  spec.ops_per_process = 8;
  engine::RunContext ctx;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    spec.seed = seed++;
    benchmark::DoNotOptimize(engine::run_backend(spec, ctx));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("trials/sec (items), reused arena");
}
BENCHMARK(BM_EngineSimulatorRunArena);

// Whole sweeps through the parallel sweeper, by worker count: the
// scaling the bench binaries inherit from --threads.
void BM_EngineSweep(benchmark::State& state) {
  const Network topo = make_bitonic(8);
  engine::SweepSpec sweep;
  sweep.base.net = &topo;
  sweep.base.processes = 8;
  sweep.base.ops_per_process = 4;
  sweep.base.c_max = 3.0;
  sweep.trials = 64;
  sweep.threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::sweep_stats(sweep));
  }
  state.SetItemsProcessed(state.iterations() * sweep.trials);
}
BENCHMARK(BM_EngineSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// The same sweep with keep_trace=false: every trial runs against the
// streaming checker and never materializes its trace.
void BM_EngineSweepStreaming(benchmark::State& state) {
  const Network topo = make_bitonic(8);
  engine::SweepSpec sweep;
  sweep.base.net = &topo;
  sweep.base.processes = 8;
  sweep.base.ops_per_process = 4;
  sweep.base.c_max = 3.0;
  sweep.base.keep_trace = false;
  sweep.trials = 64;
  sweep.threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::sweep_stats(sweep));
  }
  state.SetItemsProcessed(state.iterations() * sweep.trials);
}
BENCHMARK(BM_EngineSweepStreaming)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// ---------------------------------------------------------------------------
// --json mode: the tracked perf baseline (BENCH_micro.json).
// ---------------------------------------------------------------------------

struct TraversalRates {
  std::size_t hops = 0;
  double ref_tokens_per_sec = 0.0;
  double fast_tokens_per_sec = 0.0;

  double ref_steps_per_sec() const { return ref_tokens_per_sec * hops; }
  double fast_steps_per_sec() const { return fast_tokens_per_sec * hops; }
  double speedup() const { return fast_tokens_per_sec / ref_tokens_per_sec; }
};

/// Reference graph walk vs compiled fast path on bitonic B(width).
///
/// The two sides are measured in short alternating rounds and each side
/// keeps its best rate. On a shared machine a load spike inside one
/// side's window would otherwise skew the ratio arbitrarily; max-of-rates
/// (the classic min-of-times estimator) converges on the undisturbed
/// cost of each side, which is the quantity the speedup claim is about.
TraversalRates measure_traversal(std::uint32_t width, double min_seconds) {
  constexpr int kRounds = 4;
  const Network topo = make_bitonic(width);
  const std::uint32_t src_mask = topo.fan_in() - 1;  // fan-in is pow2
  TraversalRates r;
  r.hops = hops_per_token(topo);
  NetworkState fast_engine(topo);
  const double round_seconds = min_seconds / kRounds;
  for (int round = 0; round < kRounds; ++round) {
    r.ref_tokens_per_sec = std::max(
        r.ref_tokens_per_sec,
        cn::bench::measure_rate(kTraversalBatch, round_seconds, [&] {
          // No reset() on the reference engine: rebuild per batch (the
          // construction cost amortizes over 65536 traversals).
          ReferenceNetworkState engine(topo);
          for (TokenId t = 0; t < kTraversalBatch; ++t) {
            benchmark::DoNotOptimize(engine.shepherd(t, t, t & src_mask));
          }
        }));
    r.fast_tokens_per_sec = std::max(
        r.fast_tokens_per_sec,
        cn::bench::measure_rate(kTraversalBatch, round_seconds, [&] {
          fast_engine.reset();
          for (TokenId t = 0; t < kTraversalBatch; ++t) {
            benchmark::DoNotOptimize(fast_engine.shepherd(t, t, t & src_mask));
          }
        }));
  }
  return r;
}

struct WaveRates {
  std::size_t hops = 0;
  double tokens_per_sec = 0.0;

  double steps_per_sec() const { return tokens_per_sec * hops; }
};

/// Width-specialized wave traversal rate on bitonic B(W): full waves of W
/// tokens through the constexpr-width slot tables. Same batch size and
/// max-of-rounds noise defense as measure_traversal, so the
/// wave-vs-compiled ratio is apples to apples.
template <std::uint32_t W>
WaveRates measure_wave(double min_seconds) {
  constexpr int kRounds = 4;
  const Network topo = make_bitonic(W);
  const CompiledNetwork compiled(topo);
  const WavePlan plan(compiled);
  const auto waves = WidthWaves<W>::try_build(plan);
  WaveRates r;
  r.hops = hops_per_token(topo);
  CompiledState cstate(compiled);
  std::array<TokenCursor, W> wave{};
  std::array<Value, W> values{};
  const double round_seconds = min_seconds / kRounds;
  for (int round = 0; round < kRounds; ++round) {
    r.tokens_per_sec = std::max(
        r.tokens_per_sec,
        cn::bench::measure_rate(kTraversalBatch, round_seconds, [&] {
          cstate.reset();
          for (std::uint32_t b = 0; b < kTraversalBatch / W; ++b) {
            for (std::uint32_t i = 0; i < W; ++i) {
              wave[i] = TokenCursor{waves->entry_slot(i), i};
              ++cstate.source_count[i];
            }
            for (std::uint32_t l = 0; l < waves->depth(); ++l) {
              waves->step_level(l, cstate, wave);
            }
            waves->step_counters(cstate, wave, values);
            benchmark::DoNotOptimize(values);
          }
        }));
  }
  return r;
}

struct TrialRates {
  double fresh_per_sec = 0.0;
  double arena_per_sec = 0.0;

  double speedup() const { return arena_per_sec / fresh_per_sec; }
};

/// Engine trial throughput on bitonic B(8), fresh RunContext per trial
/// (recompiles the routing tables every time) vs one reused arena (the
/// sweep workers' configuration).
TrialRates measure_trials(double min_seconds) {
  const Network topo = make_bitonic(8);
  engine::RunSpec spec;
  spec.net = &topo;
  spec.processes = 8;
  spec.ops_per_process = 8;
  constexpr std::uint64_t kBatch = 64;
  constexpr int kRounds = 4;
  TrialRates r;
  engine::RunContext ctx;
  std::uint64_t seed = 1;
  const double round_seconds = min_seconds / kRounds;
  // Alternating rounds, max of rates — same noise defense as
  // measure_traversal.
  for (int round = 0; round < kRounds; ++round) {
    r.fresh_per_sec = std::max(
        r.fresh_per_sec, cn::bench::measure_rate(kBatch, round_seconds, [&] {
          for (std::uint64_t i = 0; i < kBatch; ++i) {
            spec.seed = seed++;
            benchmark::DoNotOptimize(engine::run_backend(spec));
          }
        }));
    r.arena_per_sec = std::max(
        r.arena_per_sec, cn::bench::measure_rate(kBatch, round_seconds, [&] {
          for (std::uint64_t i = 0; i < kBatch; ++i) {
            spec.seed = seed++;
            benchmark::DoNotOptimize(engine::run_backend(spec, ctx));
          }
        }));
  }
  return r;
}

struct AnalyzerRates {
  std::size_t tokens = 0;
  double batch_tokens_per_sec = 0.0;
  double stream_tokens_per_sec = 0.0;

  double ratio() const { return stream_tokens_per_sec / batch_tokens_per_sec; }
};

/// Batch analyze() vs the streaming checker on the shared ~32k-token
/// trace; alternating rounds, max of rates — same noise defense as
/// measure_traversal.
AnalyzerRates measure_analyzer(double min_seconds) {
  constexpr int kRounds = 4;
  const Trace& trace = analyzer_trace();
  AnalyzerRates r;
  r.tokens = trace.size();
  StreamingConsistency checker;
  const double round_seconds = min_seconds / kRounds;
  for (int round = 0; round < kRounds; ++round) {
    r.batch_tokens_per_sec = std::max(
        r.batch_tokens_per_sec,
        cn::bench::measure_rate(trace.size(), round_seconds, [&] {
          benchmark::DoNotOptimize(analyze(trace));
        }));
    r.stream_tokens_per_sec = std::max(
        r.stream_tokens_per_sec,
        cn::bench::measure_rate(trace.size(), round_seconds, [&] {
          checker.reset();
          for (const TokenRecord& rec : trace) checker.on_record(rec);
          checker.finish();
          benchmark::DoNotOptimize(checker.report());
        }));
  }
  return r;
}

/// Single-token vs batched traversal on the real-thread shared-memory
/// network, per thread count. The ratio (batch_over_single) is the
/// tracked metric: batching replaces per-token balancer RMWs with one
/// fetch_add(k) per balancer per batch, so it must stay a multiple of
/// the single-token rate regardless of the runner's absolute speed.
struct ConcurrentBatchRates {
  static constexpr std::array<std::uint32_t, 3> kThreads = {1, 4, 8};
  std::array<double, 3> single_tokens_per_sec{};
  std::array<double, 3> batch_tokens_per_sec{};

  double ratio(std::size_t i) const {
    return batch_tokens_per_sec[i] / single_tokens_per_sec[i];
  }
};

ConcurrentBatchRates measure_concurrent_batch(std::uint32_t width,
                                              double min_seconds) {
  constexpr int kRounds = 3;
  constexpr std::uint32_t kBatch = 32;
  constexpr std::uint64_t kTokensPerThread = 20000;
  const Network topo = make_bitonic(width);
  ConcurrentBatchRates r;
  (void)min_seconds;  // thread setup dominates; fixed-ops rounds, max rate
  for (std::size_t i = 0; i < r.kThreads.size(); ++i) {
    const std::uint32_t threads = r.kThreads[i];
    for (int round = 0; round < kRounds; ++round) {
      {
        ConcurrentNetwork net(topo);
        r.single_tokens_per_sec[i] = std::max(
            r.single_tokens_per_sec[i],
            run_throughput(threads, kTokensPerThread, [&](std::uint32_t t) {
              return net.increment(t % topo.fan_in());
            }));
      }
      {
        ConcurrentNetwork net(topo);
        r.batch_tokens_per_sec[i] = std::max(
            r.batch_tokens_per_sec[i],
            run_batch_throughput(threads, kTokensPerThread, kBatch,
                                 [&](std::uint32_t t, std::uint64_t* out,
                                     std::uint32_t k) {
                                   net.increment_batch(t % topo.fan_in(), k,
                                                       out);
                                 }));
      }
    }
  }
  return r;
}

std::string json_concurrent_batch(std::uint32_t width,
                                  const ConcurrentBatchRates& r) {
  std::ostringstream os;
  os << std::setprecision(6);
  os << "  \"concurrent_batch_bitonic" << width << "\": {\n";
  for (std::size_t i = 0; i < r.kThreads.size(); ++i) {
    os << "    \"threads_" << r.kThreads[i] << "\": {\n"
       << "      \"single_tokens_per_sec\": " << r.single_tokens_per_sec[i]
       << ",\n"
       << "      \"batch_tokens_per_sec\": " << r.batch_tokens_per_sec[i]
       << ",\n"
       << "      \"batch_over_single\": " << r.ratio(i) << "\n"
       << "    }" << (i + 1 < r.kThreads.size() ? "," : "") << "\n";
  }
  os << "  }";
  return os.str();
}

/// Accepted-request throughput of the sharded counting service under 8
/// closed-loop clients: classic one-request submit/wait cycles vs
/// submit_batch(16) on the batched ingress (one ticket-range draw, at
/// most min(16, shards) queue cells, and one park/wake cycle per batch),
/// plus the batched mode again with recording on (the lock-free event
/// lanes feeding a streaming checker). The two _over_ ratios are the
/// tracked metrics; absolute rates swing with the host.
struct ServiceIngressRates {
  static constexpr std::uint32_t kClients = 8;
  static constexpr std::uint32_t kClientBatch = 16;
  double single_req_per_sec = 0.0;
  double batched_req_per_sec = 0.0;
  double recorded_batched_req_per_sec = 0.0;

  double batched_over_single() const {
    return batched_req_per_sec / single_req_per_sec;
  }
  double recorded_over_unrecorded() const {
    return recorded_batched_req_per_sec / batched_req_per_sec;
  }
};

/// One closed-loop run; returns completed requests per second. The timed
/// window covers submit-to-join only — service start/stop and the sink
/// finish sit outside it.
double run_service_ingress_round(const Network& topo, std::uint32_t clients,
                                 std::uint32_t batch,
                                 std::uint64_t ops_per_client, bool record) {
  service::ServiceConfig cfg;
  cfg.shards = 2;
  cfg.max_batch = 64;
  cfg.queue_capacity = 4096;
  cfg.net = &topo;
  cfg.record = record;
  cfg.seed = 7;
  StreamingConsistency sink;
  service::CountingService svc(cfg, record ? &sink : nullptr);
  svc.start();
  const service::SubmitPolicy policy;  // default spin/yield/park gears
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      service::PolicyClient pc(svc, policy, c, /*seed=*/c + 1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t done = 0;
      if (batch <= 1) {
        for (std::uint64_t i = 0; i < ops_per_client; ++i) {
          done += pc.submit(i).status == service::SubmitStatus::kCompleted;
        }
      } else {
        for (std::uint64_t i = 0; i < ops_per_client; i += batch) {
          done += pc.submit_batch(i, batch).completed;
        }
      }
      completed.fetch_add(done, std::memory_order_relaxed);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  svc.stop();
  if (record) sink.finish();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(completed.load(std::memory_order_relaxed)) /
         secs;
}

ServiceIngressRates measure_service_ingress(double min_seconds) {
  constexpr int kRounds = 5;
  constexpr std::uint64_t kOpsPerClient = 4000;  // 32k requests per round
  (void)min_seconds;  // service + thread setup dominates; fixed-ops rounds
  const Network topo = make_bitonic(8);
  ServiceIngressRates r;
  for (int round = 0; round < kRounds; ++round) {
    r.single_req_per_sec =
        std::max(r.single_req_per_sec,
                 run_service_ingress_round(topo, r.kClients, 1, kOpsPerClient,
                                           /*record=*/false));
    r.batched_req_per_sec = std::max(
        r.batched_req_per_sec,
        run_service_ingress_round(topo, r.kClients, r.kClientBatch,
                                  kOpsPerClient, /*record=*/false));
    r.recorded_batched_req_per_sec = std::max(
        r.recorded_batched_req_per_sec,
        run_service_ingress_round(topo, r.kClients, r.kClientBatch,
                                  kOpsPerClient, /*record=*/true));
  }
  return r;
}

std::string json_service_ingress(const ServiceIngressRates& r) {
  std::ostringstream os;
  os << std::setprecision(6);
  os << "  \"service_ingress_bitonic8\": {\n"
     << "    \"clients\": " << r.kClients << ",\n"
     << "    \"client_batch\": " << r.kClientBatch << ",\n"
     << "    \"single_req_per_sec\": " << r.single_req_per_sec << ",\n"
     << "    \"batched_req_per_sec\": " << r.batched_req_per_sec << ",\n"
     << "    \"recorded_batched_req_per_sec\": "
     << r.recorded_batched_req_per_sec << ",\n"
     << "    \"batched_over_single\": " << r.batched_over_single() << ",\n"
     << "    \"recorded_over_unrecorded\": " << r.recorded_over_unrecorded()
     << "\n"
     << "  }";
  return os.str();
}

struct StreamingSweepRates {
  double collect_per_sec = 0.0;
  double stream_per_sec = 0.0;

  double ratio() const { return stream_per_sec / collect_per_sec; }
};

/// Single-threaded 8-trial sweeps of 4096-token trials, materialized
/// traces vs the streaming sink path (keep_trace=false), through either
/// the scalar event loop or the level-synchronous wave interpreter. In
/// wave mode the stream side emits per-chunk on_records batches through
/// the deferred emission window instead of one virtual call per token.
/// Trials are sized so the ratio measures the trace pipeline — collect
/// + batch analyze vs incremental checker, a gap that only opens once
/// the trace outgrows the analyzer's cache-resident regime — rather
/// than per-trial setup.
StreamingSweepRates measure_streaming_sweep(double min_seconds,
                                            bool wave_exec) {
  constexpr int kRounds = 4;
  const Network topo = make_bitonic(8);
  engine::SweepSpec sweep;
  sweep.base.net = &topo;
  sweep.base.processes = 8;
  sweep.base.ops_per_process = 512;
  sweep.base.c_max = 3.0;
  sweep.base.wave_exec = wave_exec;
  sweep.trials = 8;
  sweep.threads = 1;
  StreamingSweepRates r;
  const double round_seconds = min_seconds / kRounds;
  for (int round = 0; round < kRounds; ++round) {
    sweep.base.keep_trace = true;
    r.collect_per_sec = std::max(
        r.collect_per_sec,
        cn::bench::measure_rate(sweep.trials, round_seconds, [&] {
          benchmark::DoNotOptimize(engine::sweep_stats(sweep));
        }));
    sweep.base.keep_trace = false;
    r.stream_per_sec = std::max(
        r.stream_per_sec,
        cn::bench::measure_rate(sweep.trials, round_seconds, [&] {
          benchmark::DoNotOptimize(engine::sweep_stats(sweep));
        }));
  }
  return r;
}

std::string json_traversal(std::uint32_t width, const TraversalRates& r) {
  std::ostringstream os;
  os << std::setprecision(6);
  os << "  \"traversal_bitonic" << width << "\": {\n"
     << "    \"hops_per_token\": " << r.hops << ",\n"
     << "    \"reference_graph_walk\": {\n"
     << "      \"tokens_per_sec\": " << r.ref_tokens_per_sec << ",\n"
     << "      \"ns_per_token\": " << 1e9 / r.ref_tokens_per_sec << ",\n"
     << "      \"steps_per_sec\": " << r.ref_steps_per_sec() << "\n"
     << "    },\n"
     << "    \"compiled_fast_path\": {\n"
     << "      \"tokens_per_sec\": " << r.fast_tokens_per_sec << ",\n"
     << "      \"ns_per_token\": " << 1e9 / r.fast_tokens_per_sec << ",\n"
     << "      \"steps_per_sec\": " << r.fast_steps_per_sec() << "\n"
     << "    },\n"
     << "    \"steps_per_sec_speedup\": " << r.speedup() << "\n"
     << "  }";
  return os.str();
}

std::string json_wave(std::uint32_t width, const WaveRates& r,
                      const TraversalRates& t) {
  std::ostringstream os;
  os << std::setprecision(6);
  os << "  \"wave_bitonic" << width << "\": {\n"
     << "    \"hops_per_token\": " << r.hops << ",\n"
     << "    \"tokens_per_sec\": " << r.tokens_per_sec << ",\n"
     << "    \"ns_per_token\": " << 1e9 / r.tokens_per_sec << ",\n"
     << "    \"steps_per_sec\": " << r.steps_per_sec() << ",\n"
     << "    \"speedup_vs_compiled\": "
     << r.tokens_per_sec / t.fast_tokens_per_sec << "\n"
     << "  }";
  return os.str();
}

// ---------------------------------------------------------------------------
// --check mode: ratio-metric regression gate against the committed baseline.
// ---------------------------------------------------------------------------

/// Flattens the two-level JSON bench_micro itself emits into
/// "section.key" -> value for every numeric field. Not a general JSON
/// parser — just enough structure awareness for our own output format.
std::map<std::string, double> parse_metrics(const std::string& text) {
  std::map<std::string, double> out;
  std::vector<std::string> stack;  // enclosing object names, outermost first
  const auto path_of = [&](const std::string& key) {
    std::string path;
    for (const std::string& s : stack) path += s + ".";
    return path + key;
  };
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '"') {
      if (text[i] == '}' && !stack.empty()) stack.pop_back();
      ++i;
      continue;
    }
    const std::size_t end = text.find('"', i + 1);
    if (end == std::string::npos) break;
    const std::string key = text.substr(i + 1, end - i - 1);
    i = end + 1;
    while (i < text.size() && (text[i] == ' ' || text[i] == ':')) ++i;
    if (i >= text.size()) break;
    if (text[i] == '{') {
      stack.push_back(key);
      ++i;
    } else if (text[i] == '"') {  // string value: skip it
      i = text.find('"', i + 1);
      if (i == std::string::npos) break;
      ++i;
    } else {
      char* parsed_end = nullptr;
      const double v = std::strtod(text.c_str() + i, &parsed_end);
      if (parsed_end != text.c_str() + i) {
        out[path_of(key)] = v;
        i = static_cast<std::size_t>(parsed_end - text.c_str());
      } else {
        ++i;
      }
    }
  }
  return out;
}

/// Only the machine-independent RATIOS are gated; absolute rates swing
/// with the runner's hardware and load.
bool is_ratio_metric(const std::string& key) {
  return key.find("speedup") != std::string::npos ||
         key.find("_over_") != std::string::npos;
}

/// Returns 0 when every ratio metric of `current` is within `tolerance`
/// (a fraction of the committed value, e.g. 0.15 = may drop 15%) below
/// its committed value or better; prints a diff and returns 1 otherwise.
int check_against_baseline(const std::string& current,
                           const std::string& baseline_path,
                           double tolerance) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::cerr << "bench_micro --check: cannot read baseline "
              << baseline_path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::map<std::string, double> base = parse_metrics(buf.str());
  const std::map<std::string, double> cur = parse_metrics(current);
  bool failed = false;
  std::size_t checked = 0;
  for (const auto& [key, base_value] : base) {
    if (!is_ratio_metric(key)) continue;
    ++checked;
    const auto it = cur.find(key);
    if (it == cur.end()) {
      std::cerr << "bench_micro --check: FAIL " << key << ": in baseline ("
                << base_value << ") but missing from this run\n";
      failed = true;
      continue;
    }
    const double floor = base_value * (1.0 - tolerance);
    if (it->second < floor) {
      std::cerr << "bench_micro --check: FAIL " << key << ": " << it->second
                << " < " << floor << " (baseline " << base_value << " - "
                << tolerance * 100.0 << "%)\n";
      failed = true;
    } else {
      std::cout << "bench_micro --check: ok " << key << ": " << it->second
                << " vs baseline " << base_value << "\n";
    }
  }
  if (checked == 0) {
    std::cerr << "bench_micro --check: baseline " << baseline_path
              << " has no ratio metrics\n";
    return 1;
  }
  if (failed) {
    std::cerr << "bench_micro --check: regression against " << baseline_path
              << " (threshold: " << tolerance * 100.0
              << "% below committed ratio)\n";
    return 1;
  }
  std::cout << "bench_micro --check: all " << checked
            << " ratio metrics within tolerance of " << baseline_path << "\n";
  return 0;
}

int json_main(const CliArgs& args) {
#ifndef NDEBUG
  std::cerr << "bench_micro --json: WARNING: this is a debug build; the "
               "tracked baseline must come from -O2 (Release).\n";
#endif
  const double min_seconds = args.get_double("min-seconds", 0.5);
  const std::string out_path = args.get("out", "BENCH_micro.json");

  const TraversalRates t8 = measure_traversal(8, min_seconds);
  const TraversalRates t32 = measure_traversal(32, min_seconds);
  const TraversalRates t64 = measure_traversal(64, min_seconds);
  const WaveRates w8 = measure_wave<8>(min_seconds);
  const WaveRates w32 = measure_wave<32>(min_seconds);
  const WaveRates w64 = measure_wave<64>(min_seconds);
  const TrialRates trials = measure_trials(min_seconds);
  const AnalyzerRates an = measure_analyzer(min_seconds);
  const StreamingSweepRates ss =
      measure_streaming_sweep(min_seconds, /*wave_exec=*/false);
  const StreamingSweepRates ssw =
      measure_streaming_sweep(min_seconds, /*wave_exec=*/true);
  const ConcurrentBatchRates cb8 = measure_concurrent_batch(8, min_seconds);
  const ConcurrentBatchRates cb32 = measure_concurrent_batch(32, min_seconds);
  const ServiceIngressRates si = measure_service_ingress(min_seconds);

  std::ostringstream os;
  os << std::setprecision(6);
  os << "{\n"
     << "  \"bench\": \"bench_micro --json\",\n"
#ifdef NDEBUG
     << "  \"build\": \"release\",\n"
#else
     << "  \"build\": \"debug\",\n"
#endif
     << json_traversal(8, t8) << ",\n"
     << json_traversal(32, t32) << ",\n"
     << json_traversal(64, t64) << ",\n"
     << json_wave(8, w8, t8) << ",\n"
     << json_wave(32, w32, t32) << ",\n"
     << json_wave(64, w64, t64) << ",\n"
     << "  \"engine_bitonic8\": {\n"
     << "    \"trials_per_sec_fresh_context\": " << trials.fresh_per_sec
     << ",\n"
     << "    \"trials_per_sec_reused_arena\": " << trials.arena_per_sec
     << ",\n"
     << "    \"trials_per_sec_speedup\": " << trials.speedup() << "\n"
     << "  },\n"
     << "  \"analyzer_bitonic8\": {\n"
     << "    \"trace_tokens\": " << an.tokens << ",\n"
     << "    \"batch_tokens_per_sec\": " << an.batch_tokens_per_sec << ",\n"
     << "    \"streaming_tokens_per_sec\": " << an.stream_tokens_per_sec
     << ",\n"
     << "    \"streaming_over_batch\": " << an.ratio() << "\n"
     << "  },\n"
     << "  \"streaming_sweep_bitonic8\": {\n"
     << "    \"trials_per_sec_collect\": " << ss.collect_per_sec << ",\n"
     << "    \"trials_per_sec_stream\": " << ss.stream_per_sec << ",\n"
     << "    \"stream_over_collect\": " << ss.ratio() << "\n"
     << "  },\n"
     << "  \"streaming_sweep_bitonic8_wave\": {\n"
     << "    \"trials_per_sec_collect\": " << ssw.collect_per_sec << ",\n"
     << "    \"trials_per_sec_stream\": " << ssw.stream_per_sec << ",\n"
     << "    \"stream_over_collect\": " << ssw.ratio() << "\n"
     << "  },\n"
     << json_concurrent_batch(8, cb8) << ",\n"
     << json_concurrent_batch(32, cb32) << ",\n"
     << json_service_ingress(si) << "\n"
     << "}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_micro --json: cannot write " << out_path << "\n";
    return 1;
  }
  out << os.str();

  std::cout << "traversal B(8):  reference " << std::setprecision(4)
            << t8.ref_steps_per_sec() / 1e6 << "M steps/s, compiled "
            << t8.fast_steps_per_sec() / 1e6 << "M steps/s ("
            << t8.speedup() << "x)\n"
            << "traversal B(32): reference " << t32.ref_steps_per_sec() / 1e6
            << "M steps/s, compiled " << t32.fast_steps_per_sec() / 1e6
            << "M steps/s (" << t32.speedup() << "x)\n"
            << "traversal B(64): reference " << t64.ref_steps_per_sec() / 1e6
            << "M steps/s, compiled " << t64.fast_steps_per_sec() / 1e6
            << "M steps/s (" << t64.speedup() << "x)\n"
            << "wave B(8):       " << w8.steps_per_sec() / 1e6
            << "M steps/s (" << w8.tokens_per_sec / t8.fast_tokens_per_sec
            << "x vs compiled)\n"
            << "wave B(32):      " << w32.steps_per_sec() / 1e6
            << "M steps/s (" << w32.tokens_per_sec / t32.fast_tokens_per_sec
            << "x vs compiled)\n"
            << "wave B(64):      " << w64.steps_per_sec() / 1e6
            << "M steps/s (" << w64.tokens_per_sec / t64.fast_tokens_per_sec
            << "x vs compiled)\n"
            << "engine B(8):     " << trials.fresh_per_sec / 1e3
            << "k trials/s fresh context, " << trials.arena_per_sec / 1e3
            << "k trials/s reused arena (" << trials.speedup() << "x)\n"
            << "analyzer " << an.tokens << " tokens: batch "
            << an.batch_tokens_per_sec / 1e6 << "M tokens/s, streaming "
            << an.stream_tokens_per_sec / 1e6 << "M tokens/s ("
            << an.ratio() << "x)\n"
            << "sweep B(8):      " << ss.collect_per_sec / 1e3
            << "k trials/s collect, " << ss.stream_per_sec / 1e3
            << "k trials/s streaming (" << ss.ratio() << "x)\n"
            << "sweep B(8) wave: " << ssw.collect_per_sec / 1e3
            << "k trials/s collect, " << ssw.stream_per_sec / 1e3
            << "k trials/s streaming (" << ssw.ratio() << "x)\n"
            << "batch B(8)  @8T: " << cb8.single_tokens_per_sec[2] / 1e6
            << "M single tokens/s, " << cb8.batch_tokens_per_sec[2] / 1e6
            << "M batched tokens/s (" << cb8.ratio(2) << "x)\n"
            << "batch B(32) @8T: " << cb32.single_tokens_per_sec[2] / 1e6
            << "M single tokens/s, " << cb32.batch_tokens_per_sec[2] / 1e6
            << "M batched tokens/s (" << cb32.ratio(2) << "x)\n"
            << "ingress B(8) @8C: " << si.single_req_per_sec / 1e3
            << "k single req/s, " << si.batched_req_per_sec / 1e3
            << "k batched req/s (" << si.batched_over_single()
            << "x), recorded " << si.recorded_batched_req_per_sec / 1e3
            << "k req/s (" << si.recorded_over_unrecorded()
            << "x of batched)\n"
            << "wrote " << out_path << "\n";

  if (args.has("check")) {
    const double tolerance = args.get_double("check_tolerance", 0.15);
    if (tolerance < 0.0 || tolerance >= 1.0) {
      std::cerr << "bench_micro --check: check_tolerance must be a "
                   "fraction in [0, 1), got "
                << tolerance << "\n";
      return 1;
    }
    return check_against_baseline(
        os.str(), args.get("baseline", "BENCH_micro.json"), tolerance);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cn::CliArgs args(argc, argv);
  if (args.has("json")) return json_main(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
