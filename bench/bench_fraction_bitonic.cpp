// E4 — Proposition 5.2/5.3: the three-wave execution on the bitonic
// network B(w) under c_max/c_min > (lg w + 3)/2 yields non-linearizability
// AND non-sequential-consistency fractions of at least 1/3.
//
// Prints, per width: the ratio threshold, the ratio actually used, and
// the achieved fractions next to the paper's 1/3 bound. The wave runs
// through the engine's "wave" backend.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cn;
  std::cout << "E4: bitonic three-wave lower bound (Propositions 5.2/5.3)\n\n";
  TablePrinter t({"w", "threshold (lg w+3)/2", "ratio used", "F_nl",
                  "F_nsc", "paper bound", "tokens"});
  for (const std::uint32_t w : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const Network net = make_bitonic(w);
    const engine::RunResult res = cn::bench::run_wave(net, /*ell=*/1);
    if (!res.ok()) {
      std::cerr << "w=" << w << ": " << res.error << "\n";
      return 1;
    }
    t.add_row({std::to_string(w), fmt_double(res.metric("required_ratio"), 2),
               fmt_double(res.metric("ratio_used"), 3),
               fmt_bound(res.report.f_nl, 1.0 / 3.0, /*lower_bound=*/true),
               fmt_bound(res.report.f_nsc, 1.0 / 3.0, /*lower_bound=*/true),
               ">= 1/3", std::to_string(res.report.total)});
  }
  t.print(std::cout);
  std::cout << "\nShape check: both fractions equal 1/3 exactly at every "
               "width, matching the paper's lower bound;\nthe required "
               "asynchrony (lg w + 3)/2 grows with w, confirming that "
               "unbounded asynchrony is needed\nas the network grows "
               "(paper, discussion after Proposition 5.3).\n";
  return 0;
}
