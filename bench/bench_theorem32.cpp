// E2 — Theorem 3.2: timing conditions on c_min, c_max, C_g alone cannot
// distinguish sequential consistency from linearizability.
//
// For each network: build a base execution that is non-linearizable but
// sequentially consistent (the distinct-process wave variant, produced
// by the engine's "wave" backend), apply the Lemma 3.1 token-insertion
// transform, and show the transformed execution (i) violates sequential
// consistency and (ii) satisfies the same c_min/c_max envelope with no
// smaller global delay C_g.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/valency.hpp"
#include "sim/adversary.hpp"

namespace {

std::string opt(const std::optional<double>& v) {
  return v ? cn::fmt_double(*v, 3) : "inf";
}

}  // namespace

int main() {
  using namespace cn;
  std::cout << "E2: the Theorem 3.2 non-distinguishability transform\n\n";
  TablePrinter t({"network", "base lin?", "base SC?", "trans SC?",
                  "c_max/c_min base", "c_max/c_min trans", "C_g base",
                  "C_g trans", "inserted tokens"});
  for (const std::uint32_t w : {4u, 8u, 16u, 32u}) {
    for (const Network& net : {make_bitonic(w), make_periodic(w)}) {
      const engine::RunResult base =
          cn::bench::run_wave(net, /*ell=*/1, 1.0, 0.0,
                              /*distinct_processes=*/true);
      if (!base.ok()) {
        std::cerr << net.name() << ": " << base.error << "\n";
        return 1;
      }
      const Theorem32Result res = run_theorem32_transform(net, base.exec);
      if (!res.ok()) {
        std::cerr << net.name() << ": " << res.error << "\n";
        return 1;
      }
      t.add_row(
          {net.name(), cn::bench::yes_no(res.base_report.linearizable()),
           cn::bench::yes_no(res.base_report.sequentially_consistent()),
           cn::bench::yes_no(res.transformed_report.sequentially_consistent()),
           fmt_double(res.base_timing.ratio(), 3),
           fmt_double(res.transformed_timing.ratio(), 3),
           opt(res.base_timing.C_g), opt(res.transformed_timing.C_g),
           std::to_string(res.inserted_per_wire * net.fan_in())});
    }
  }
  // Counting tree: no wave construction applies (not continuously
  // complete), so the base execution comes from randomized search; the
  // transform then needs the LCM-scaled wave — w tokens on the single
  // input wire — to preserve every toggle's state (Lemma 3.1 extension).
  Xoshiro256 rng(0x32);
  for (const std::uint32_t w : {4u, 8u}) {
    const Network net = make_counting_tree(w);
    const TimedExecution base =
        find_nonlinearizable_sc_execution(net, 1.0, 3.0, 30'000, rng);
    if (base.plans.empty()) {
      std::cerr << net.name() << ": no base execution found\n";
      continue;
    }
    const Theorem32Result res = run_theorem32_transform(net, base);
    if (!res.ok()) {
      std::cerr << net.name() << ": " << res.error << "\n";
      continue;
    }
    t.add_row(
        {net.name(), cn::bench::yes_no(res.base_report.linearizable()),
         cn::bench::yes_no(res.base_report.sequentially_consistent()),
         cn::bench::yes_no(res.transformed_report.sequentially_consistent()),
         fmt_double(res.base_timing.ratio(), 3),
         fmt_double(res.transformed_timing.ratio(), 3),
         opt(res.base_timing.C_g), opt(res.transformed_timing.C_g),
         std::to_string(res.inserted_per_wire * net.fan_in())});
  }

  t.print(std::cout);
  std::cout << "\nShape check: every base execution is non-linearizable yet "
               "sequentially consistent; every\ntransformed execution "
               "violates sequential consistency while keeping the same "
               "wire-delay\nenvelope and global delay — so no condition on "
               "(c_min, c_max, C_g) alone separates the two\nconsistency "
               "levels (Theorem 3.2).\n";
  return 0;
}
