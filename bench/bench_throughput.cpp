// E8 — Throughput and contention (paper Section 1.1 motivation):
// counting networks vs a single fetch&increment counter, an MCS
// queue-lock counter, a software combining tree, and a diffracting tree.
//
// One binary so the comparison appears as a single table: ops/second per
// structure per thread count, every structure behind its engine backend
// (record_trace off, so the measurement is the bare code path).
// Absolute numbers depend on the host; the shape the paper's motivation
// predicts on a multiprocessor is that the centralized counter degrades
// under contention while the distributed structures hold up. (On a
// single hardware thread, contention cannot manifest as cache-line
// ping-pong, so the centralized counter tends to stay fastest — the
// table still shows the per-op cost of each structure's code path.)
#include <iostream>
#include <thread>

#include "bench_common.hpp"

int main() {
  using namespace cn;
  std::cout << "E8: counter throughput comparison (ops/sec, higher is "
               "better)\n\n";
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "hardware threads: " << hw << "\n\n";

  const Network bitonic8 = make_bitonic(8);
  const Network periodic8 = make_periodic(8);

  TablePrinter t({"structure", "1 thread", "2 threads", "4 threads",
                  "8 threads"});
  const std::uint32_t thread_counts[] = {1, 2, 4, 8};
  constexpr std::uint64_t kOps = 20'000;

  struct Row {
    std::string label;
    std::string backend;
    const Network* net;       ///< Topology for network backends.
    std::uint32_t width = 0;  ///< Tree width for baseline tree backends.
    std::uint32_t batch = 0;  ///< concurrent: tokens per increment_batch.
    std::uint32_t shards = 0; ///< service: shard count.
  };
  const Row rows[] = {
      {"fetch&inc (single atomic)", "fetch_inc", nullptr, 0, 0, 0},
      {"MCS queue-lock counter", "mcs", nullptr, 0, 0, 0},
      {"combining tree (16)", "combining_tree", nullptr, 16, 0, 0},
      {"diffracting tree (8)", "diffracting_tree", nullptr, 8, 0, 0},
      {"bitonic network (8)", "concurrent", &bitonic8, 0, 0, 0},
      {"periodic network (8)", "concurrent", &periodic8, 0, 0, 0},
      {"bitonic (8), batch=32", "concurrent", &bitonic8, 0, 32, 0},
      {"service, 2 shards B(8)", "service", &bitonic8, 0, 0, 2},
      {"service, 4 shards B(8)", "service", &bitonic8, 0, 0, 4},
  };

  for (const Row& row : rows) {
    std::vector<std::string> cells{row.label};
    for (const std::uint32_t threads : thread_counts) {
      engine::RunSpec spec;
      spec.backend = row.backend;
      spec.net = row.net;
      if (row.width > 0) spec.width = row.width;
      if (row.batch > 0) spec.batch_size = row.batch;
      if (row.shards > 0) spec.service_shards = row.shards;
      spec.threads = threads;
      spec.ops_per_thread = kOps / threads;
      spec.record_trace = false;  // bare throughput, no recording overhead
      const engine::RunResult res = engine::run_backend(spec);
      if (!res.ok()) {
        std::cerr << row.label << ": " << res.error << "\n";
        return 1;
      }
      cells.push_back(fmt_double(res.metric("ops_per_sec") / 1e6, 3) + "M");
    }
    t.add_row(cells);
  }

  t.print(std::cout);
  std::cout << "\nBatched row: increment_batch(32) pays ~1 balancer RMW "
               "per batch instead of per token.\nService rows: closed-loop "
               "clients against the sharded counting service (queue + "
               "worker round trip per op).\n";
  std::cout << "\nShape notes: the bitonic network costs ~d(G)+1 = "
            << bitonic8.depth() + 1
            << " atomic ops per increment vs 1 for fetch&inc, so it is "
               "slower uncontended; its payoff\n(which needs real "
               "parallelism to observe) is that those ops spread over "
            << bitonic8.num_balancers()
            << " balancers\ninstead of one hot line.\n";
  return 0;
}
