// E8 — Throughput and contention (paper Section 1.1 motivation):
// counting networks vs a single fetch&increment counter, an MCS
// queue-lock counter, a software combining tree, and a diffracting tree.
//
// One binary so the comparison appears as a single table: ops/second per
// structure per thread count. Absolute numbers depend on the host; the
// shape the paper's motivation predicts on a multiprocessor is that the
// centralized counter degrades under contention while the distributed
// structures hold up. (On a single hardware thread, contention cannot
// manifest as cache-line ping-pong, so the centralized counter tends to
// stay fastest — the table still shows the per-op cost of each
// structure's code path.)
#include <iostream>

#include "baselines/combining_tree.hpp"
#include "baselines/diffracting_tree.hpp"
#include "baselines/fetch_inc_counter.hpp"
#include "baselines/mcs_counter.hpp"
#include "bench_common.hpp"
#include "concurrent/concurrent_network.hpp"
#include "concurrent/harness.hpp"

int main() {
  using namespace cn;
  std::cout << "E8: counter throughput comparison (ops/sec, higher is "
               "better)\n\n";
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "hardware threads: " << hw << "\n\n";

  const Network bitonic8 = make_bitonic(8);
  const Network periodic8 = make_periodic(8);

  TablePrinter t({"structure", "1 thread", "2 threads", "4 threads",
                  "8 threads"});
  const std::uint32_t thread_counts[] = {1, 2, 4, 8};
  constexpr std::uint64_t kOps = 20'000;

  auto bench_all = [&](const std::string& name, auto make_next) {
    std::vector<std::string> row{name};
    for (const std::uint32_t threads : thread_counts) {
      auto next = make_next();
      const double ops = run_throughput(threads, kOps / threads, next);
      row.push_back(fmt_double(ops / 1e6, 3) + "M");
    }
    t.add_row(row);
  };

  bench_all("fetch&inc (single atomic)", [&] {
    auto c = std::make_shared<FetchIncCounter>();
    return std::function<std::uint64_t(std::uint32_t)>(
        [c](std::uint32_t) { return c->next(); });
  });
  bench_all("MCS queue-lock counter", [&] {
    auto c = std::make_shared<McsCounter>();
    return std::function<std::uint64_t(std::uint32_t)>(
        [c](std::uint32_t th) { return c->next(th); });
  });
  bench_all("combining tree (16)", [&] {
    auto c = std::make_shared<CombiningTree>(16);
    return std::function<std::uint64_t(std::uint32_t)>(
        [c](std::uint32_t th) { return c->next(th); });
  });
  bench_all("diffracting tree (8)", [&] {
    auto c = std::make_shared<DiffractingTree>(8);
    return std::function<std::uint64_t(std::uint32_t)>(
        [c](std::uint32_t th) { return c->next(th); });
  });
  bench_all("bitonic network (8)", [&] {
    auto c = std::make_shared<ConcurrentNetwork>(bitonic8);
    return std::function<std::uint64_t(std::uint32_t)>(
        [c](std::uint32_t th) { return c->increment(th % 8); });
  });
  bench_all("periodic network (8)", [&] {
    auto c = std::make_shared<ConcurrentNetwork>(periodic8);
    return std::function<std::uint64_t(std::uint32_t)>(
        [c](std::uint32_t th) { return c->increment(th % 8); });
  });

  t.print(std::cout);
  std::cout << "\nShape notes: the bitonic network costs ~d(G)+1 = "
            << bitonic8.depth() + 1
            << " atomic ops per increment vs 1 for fetch&inc, so it is "
               "slower uncontended; its payoff\n(which needs real "
               "parallelism to observe) is that those ops spread over "
            << bitonic8.num_balancers()
            << " balancers\ninstead of one hot line.\n";
  return 0;
}
