// Graceful-degradation curves: how the paper's consistency guarantees
// and the counting / smoothness properties decay as fault probability
// rises. For each mode a FaultPlan knob (token loss, stuck balancers,
// process crashes, message faults, or a mix) is swept over a probability
// grid; each grid point fans `--trials` seeds out over the parallel
// sweeper and reports violation RATES over completed trials.
//
//   ./bench_faults [--mode all|loss|stuck|crash|msg|mixed|threads]
//                  [--network bitonic] [--width 8] [--trials 100]
//                  [--processes 8] [--ops 4] [--seed 1] [--threads 0]
//                  [--probs 0,0.01,0.02,0.05,0.1,0.2] [--fault_seed 0]
//                  [--timeout_ms 0] [--retries 0] [--wave] [--json]
//
// --wave interprets the simulated backends through the level-synchronous
// wave engine (RunSpec::wave_exec); the curves are byte-identical.
//
// All default modes drive deterministic backends (simulator / msg), so
// the table and --json output are byte-identical at any --threads value.
// The opt-in "threads" mode drives the shared-memory network on real
// threads; its injected fault MIX is deterministic but the observed
// violation rates depend on live interleaving.
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault.hpp"

namespace {

using namespace cn;

struct Mode {
  std::string name;
  std::string backend;
  /// Scales the per-mode knobs from the grid probability p.
  void (*apply)(fault::FaultPlan&, double);
};

const Mode kModes[] = {
    {"loss", "simulator",
     [](fault::FaultPlan& f, double p) { f.p_token_loss = p; }},
    {"stuck", "simulator",
     [](fault::FaultPlan& f, double p) { f.p_stuck_balancer = p; }},
    {"crash", "simulator",
     [](fault::FaultPlan& f, double p) { f.p_process_crash = p; }},
    {"msg", "msg",
     [](fault::FaultPlan& f, double p) {
       f.p_token_loss = p;
       f.p_msg_duplicate = p / 2;
       f.p_msg_delay = p;
     }},
    {"mixed", "simulator",
     [](fault::FaultPlan& f, double p) {
       f.p_token_loss = p;
       f.p_stuck_balancer = p / 2;
       f.p_process_crash = p / 4;
     }},
    {"threads", "concurrent",
     [](fault::FaultPlan& f, double p) {
       f.p_thread_stall = p;
       f.p_thread_abandon = p / 2;
       f.p_process_crash = p / 4;
     }},
};

std::vector<double> parse_probs(const std::string& csv) {
  std::vector<double> probs;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) probs.push_back(std::strtod(item.c_str(), nullptr));
  }
  return probs;
}

double rate(const engine::SweepStats& st, const std::string& key) {
  if (st.completed == 0) return 0.0;
  const auto it = st.metric_sums.find(key);
  return it == st.metric_sums.end()
             ? 0.0
             : it->second / static_cast<double>(st.completed);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string mode_arg = args.get("mode", "all");
  const std::vector<double> probs =
      parse_probs(args.get("probs", "0,0.01,0.02,0.05,0.1,0.2"));
  const bool json = args.get_bool("json", false);

  std::vector<const Mode*> selected;
  for (const Mode& m : kModes) {
    // "all" covers the deterministic modes; real-thread injection is
    // opt-in so default output stays byte-identical at any --threads.
    if (mode_arg == m.name || (mode_arg == "all" && m.name != "threads")) {
      selected.push_back(&m);
    }
  }
  if (selected.empty()) {
    std::cerr << "unknown mode '" << mode_arg
              << "' (loss|stuck|crash|msg|mixed|threads|all)\n";
    return 2;
  }

  std::ostringstream json_series;
  TablePrinter table({"mode", "p", "completed", "errors", "counting",
                      "smooth", "non-lin", "non-SC", "any", "survival"});
  bool first_series = true;
  for (const Mode* mode : selected) {
    if (!first_series) json_series << ",";
    first_series = false;
    json_series << "{\"mode\":\"" << mode->name << "\",\"points\":[";
    bool first_point = true;
    for (const double p : probs) {
      engine::SweepSpec sweep;
      engine::RunSpec& spec = sweep.base;
      spec.backend = mode->backend;
      spec.network = args.get("network", "bitonic");
      spec.width = static_cast<std::uint32_t>(args.get_int("width", 8));
      spec.processes =
          static_cast<std::uint32_t>(args.get_int("processes", 8));
      spec.ops_per_process = static_cast<std::uint32_t>(args.get_int("ops", 4));
      spec.c_min = args.get_double("c_min", 1.0);
      spec.c_max = args.get_double("c_max", 2.0);
      spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      spec.threads =
          static_cast<std::uint32_t>(args.get_int("run_threads", 4));
      spec.ops_per_thread =
          static_cast<std::uint64_t>(args.get_int("ops_per_thread", 50));
      spec.wave_exec = args.get_bool("wave", false);
      spec.fault.enabled = true;
      spec.fault.seed =
          static_cast<std::uint64_t>(args.get_int("fault_seed", 0));
      mode->apply(spec.fault, p);
      sweep.trials = static_cast<std::uint64_t>(args.get_int("trials", 100));
      sweep.threads = cn::bench::sweep_threads(args);
      sweep.timeout_ms =
          static_cast<std::uint64_t>(args.get_int("timeout_ms", 0));
      sweep.max_retries =
          static_cast<std::uint32_t>(args.get_int("retries", 0));

      const engine::SweepStats st = engine::sweep_stats(sweep);
      const double counting = rate(st, "counting_violation");
      const double smooth = rate(st, "smoothness_violation");
      // A trial destroyed outright (every operation lost, classified
      // "fault_injected") is maximal degradation: count it as violated
      // instead of silently dropping it from the denominator —
      // otherwise high-p points look BETTER as survivors get rarer.
      const auto destroyed_it = st.error_table.find("fault_injected");
      const double destroyed =
          destroyed_it == st.error_table.end()
              ? 0.0
              : static_cast<double>(destroyed_it->second.count);
      const double any_denom = static_cast<double>(st.completed) + destroyed;
      const double any =
          any_denom > 0
              ? (rate(st, "any_violation") * st.completed + destroyed) /
                    any_denom
              : 0.0;
      const double non_lin =
          st.completed > 0
              ? static_cast<double>(st.lin_violations) / st.completed
              : 0.0;
      const double non_sc =
          st.completed > 0
              ? static_cast<double>(st.sc_violations) / st.completed
              : 0.0;
      // Fraction of requested operations that completed across ALL
      // trials (errored ones contribute zero): monotone decreasing in p
      // even when the per-survivor violation rates saturate.
      const std::uint64_t per_trial_ops =
          spec.backend == "concurrent"
              ? static_cast<std::uint64_t>(spec.threads) * spec.ops_per_thread
              : static_cast<std::uint64_t>(spec.processes) *
                    spec.ops_per_process;
      const double requested =
          static_cast<double>(sweep.trials * per_trial_ops);
      const double survival =
          requested > 0 ? static_cast<double>(st.total_tokens) / requested
                        : 0.0;

      table.add_row({mode->name, fmt_double(p, 3),
                     std::to_string(st.completed), std::to_string(st.errors),
                     fmt_double(counting, 3), fmt_double(smooth, 3),
                     fmt_double(non_lin, 3), fmt_double(non_sc, 3),
                     fmt_double(any, 3), fmt_double(survival, 3)});
      if (!first_point) json_series << ",";
      first_point = false;
      json_series << "{\"p\":" << fmt_double(p, 6)
                  << ",\"stats\":" << engine::to_json(st)
                  << ",\"counting_violation_rate\":" << fmt_double(counting, 6)
                  << ",\"smoothness_violation_rate\":" << fmt_double(smooth, 6)
                  << ",\"lin_violation_rate\":" << fmt_double(non_lin, 6)
                  << ",\"sc_violation_rate\":" << fmt_double(non_sc, 6)
                  << ",\"any_violation_rate\":" << fmt_double(any, 6)
                  << ",\"survival_rate\":" << fmt_double(survival, 6) << "}";
    }
    json_series << "]}";
  }

  if (json) {
    std::cout << "{\"series\":[" << json_series.str() << "]}\n";
  } else {
    std::ostringstream os;
    table.print(os);
    std::cout << os.str();
  }
  return 0;
}
