// Ablation — message-passing implementation (paper Section 2.3 remark):
// the same timing theory governs balancers implemented as actors whose
// wires are messages with latencies in [c_min, c_max]. Sweeping the
// latency ratio shows consistency degrading exactly where the
// shared-memory theory predicts: never at ratio <= 2, increasingly often
// beyond, and never under the Theorem 4.1 think-time regime. Runs fan
// out over the engine's "msg" backend on the parallel sweeper.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const CliArgs args(argc, argv);
  const Network net = make_bitonic(8);
  std::cout << "Ablation: message-passing service on " << net.name()
            << " — consistency vs latency ratio\n\n";
  TablePrinter t({"c_max/c_min", "local delay", "runs", "non-lin runs",
                  "non-SC runs", "worst F_nl", "msgs/op"});
  const struct {
    double ratio;
    bool thm41;
  } rows[] = {{1.0, false}, {1.5, false}, {2.0, false}, {3.0, false},
              {5.0, false}, {8.0, false}, {8.0, true}};
  for (const auto& row : rows) {
    const double c_min = 1.0, c_max = row.ratio;
    const double local =
        row.thm41 ? net.depth() * (c_max - 2.0 * c_min) + 0.5 : 0.0;
    engine::SweepSpec sweep;
    sweep.base.backend = "msg";
    sweep.base.net = &net;
    sweep.base.processes = 8;
    sweep.base.ops_per_process = 12;
    sweep.base.c_min = c_min;
    sweep.base.c_max = c_max;
    sweep.base.local_delay_min = local;
    sweep.base.slow_process_zero = true;  // heterogeneous c_min^P adversary
    sweep.base.seed = 7919;
    sweep.trials = 60;
    sweep.threads = cn::bench::sweep_threads(args);
    const engine::SweepStats r = engine::sweep_stats(sweep);
    const auto msgs_it = r.metric_sums.find("messages");
    const double msgs =
        msgs_it == r.metric_sums.end() ? 0.0 : msgs_it->second;
    t.add_row({fmt_double(row.ratio, 1),
               row.thm41 ? fmt_double(local, 1) + " (Thm 4.1)" : "0",
               std::to_string(r.trials), std::to_string(r.lin_violations),
               std::to_string(r.sc_violations), fmt_double(r.worst_f_nl),
               fmt_double(r.total_tokens > 0
                              ? msgs / static_cast<double>(r.total_tokens)
                              : 0.0,
                          1)});
  }
  t.print(std::cout);
  std::cout << "\nShape check: ratio <= 2 is provably clean (LSST Cor 3.10 "
               "via Theorem 3.2); violations appear\nand grow beyond it. "
               "The last row is the paper's headline, observed in vivo: "
               "with the\nTheorem 4.1 think time, non-SC runs drop to ZERO "
               "while non-linearizable runs persist —\nthe local delay "
               "buys sequential consistency but not linearizability "
               "(Corollary 4.5), and\nthe shared-memory timing theory "
               "transfers to message passing unchanged.\n";
  return 0;
}
