// Ablation — message-passing implementation (paper Section 2.3 remark):
// the same timing theory governs balancers implemented as actors whose
// wires are messages with latencies in [c_min, c_max]. Sweeping the
// latency ratio shows consistency degrading exactly where the
// shared-memory theory predicts: never at ratio <= 2, increasingly often
// beyond, and never under the Theorem 4.1 think-time regime.
#include <iostream>

#include "bench_common.hpp"
#include "msg/service.hpp"

int main() {
  using namespace cn;
  const Network net = make_bitonic(8);
  std::cout << "Ablation: message-passing service on " << net.name()
            << " — consistency vs latency ratio\n\n";
  TablePrinter t({"c_max/c_min", "local delay", "runs", "non-lin runs",
                  "non-SC runs", "worst F_nl", "msgs/op"});
  const struct {
    double ratio;
    bool thm41;
  } rows[] = {{1.0, false}, {1.5, false}, {2.0, false}, {3.0, false},
              {5.0, false}, {8.0, false}, {8.0, true}};
  for (const auto& row : rows) {
    const double c_min = 1.0, c_max = row.ratio;
    const double local =
        row.thm41 ? net.depth() * (c_max - 2.0 * c_min) + 0.5 : 0.0;
    std::uint64_t nl_runs = 0, nsc_runs = 0, msgs = 0, ops = 0;
    double worst = 0.0;
    constexpr std::uint64_t kRuns = 60;
    for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
      msg::MsgRunSpec spec;
      spec.processes = 8;
      spec.ops_per_process = 12;
      spec.c_min = c_min;
      spec.c_max = c_max;
      spec.local_delay = local;
      spec.slow_process_zero = true;  // heterogeneous c_min^P adversary
      spec.seed = seed * 7919;
      const auto res = msg::run_message_passing(net, spec);
      if (!res.ok()) continue;
      const ConsistencyReport rep = analyze(res.trace);
      nl_runs += !rep.linearizable();
      nsc_runs += !rep.sequentially_consistent();
      worst = std::max(worst, rep.f_nl);
      msgs += res.messages;
      ops += res.trace.size();
    }
    t.add_row({fmt_double(row.ratio, 1),
               row.thm41 ? fmt_double(local, 1) + " (Thm 4.1)" : "0",
               std::to_string(kRuns), std::to_string(nl_runs),
               std::to_string(nsc_runs), fmt_double(worst),
               fmt_double(static_cast<double>(msgs) / ops, 1)});
  }
  t.print(std::cout);
  std::cout << "\nShape check: ratio <= 2 is provably clean (LSST Cor 3.10 "
               "via Theorem 3.2); violations appear\nand grow beyond it. "
               "The last row is the paper's headline, observed in vivo: "
               "with the\nTheorem 4.1 think time, non-SC runs drop to ZERO "
               "while non-linearizable runs persist —\nthe local delay "
               "buys sequential consistency but not linearizability "
               "(Corollary 4.5), and\nthe shared-memory timing theory "
               "transfers to message passing unchanged.\n";
  return 0;
}
