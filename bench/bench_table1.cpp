// E1 — Table 1 probe: empirically exercises each known necessary /
// sufficient timing condition for linearizability (and, by Theorem 3.2,
// for sequential consistency) on the bitonic network, the periodic
// network, and the counting tree.
//
// Sufficient conditions are probed by randomized extreme-delay searches
// AT the boundary (no violation may be found); necessary conditions by
// exhibiting a violating execution just ABOVE the boundary (wave
// construction where available, randomized search otherwise).
#include <iostream>

#include "bench_common.hpp"
#include "core/structure.hpp"
#include "core/valency.hpp"
#include "sim/adversary.hpp"

namespace {

using namespace cn;
using cn::bench::search_violations;
using cn::bench::yes_no;

/// Burst workload honoring a global-delay floor: tokens within a burst
/// overlap freely; consecutive bursts are separated by at least `gap`
/// (so every non-overlapping pair has C_g >= gap).
TimedExecution burst_workload(const Network& net, double c_min, double c_max,
                              double gap, std::uint32_t bursts,
                              std::uint32_t burst_size, Xoshiro256& rng) {
  TimedExecution exec;
  exec.net = &net;
  const std::uint32_t d = net.depth();
  TokenId next = 0;
  double t0 = 0.0;
  for (std::uint32_t b = 0; b < bursts; ++b) {
    double latest_exit = t0;
    for (std::uint32_t i = 0; i < burst_size; ++i) {
      TokenPlan p;
      p.token = next;
      p.process = next;  // all distinct processes: pure C_g probe
      p.source = i % net.fan_in();
      p.rank = rng.unit();
      p.times.resize(d + 1);
      p.times[0] = t0 + rng.uniform(0.0, 0.25 * c_min);
      for (std::uint32_t h = 1; h <= d; ++h) {
        p.times[h] = p.times[h - 1] + (rng.below(2) ? c_min : c_max);
      }
      latest_exit = std::max(latest_exit, p.times[d]);
      exec.plans.push_back(std::move(p));
      ++next;
    }
    t0 = latest_exit + gap;
  }
  return exec;
}

}  // namespace

int main() {
  std::cout << "E1: Table 1 probe — necessary and sufficient timing "
               "conditions\n\n";
  TablePrinter t({"condition (Table 1 row)", "network", "probe",
                  "violations", "verdict"});
  Xoshiro256 rng(0x7AB1E);

  // --- Sufficient: c_max/c_min <= 2 (LSST99 Cor 3.10; also MPT97 Thm 4.1
  // with s(G) = d(G) for uniform networks). Probe AT ratio 2.
  for (const Network& net :
       {make_bitonic(8), make_periodic(8), make_counting_tree(8)}) {
    const auto r = search_violations(net, 1.0, 2.0, 400, rng);
    t.add_row({"sufficient: ratio <= 2 [LSST Cor 3.10]", net.name(),
               "random x" + std::to_string(r.trials),
               std::to_string(r.lin_violations) + " lin / " +
                   std::to_string(r.sc_violations) + " SC",
               r.lin_violations == 0 ? "holds" : "REFUTED"});
  }

  // --- Necessary: ratio <= d/irad + 1 (MPT97 Thm 3.1). For B(w) the
  // threshold is (lg w + 3)/2; the wave attack violates just above it.
  for (const std::uint32_t w : {8u, 16u, 32u}) {
    const Network net = make_bitonic(w);
    const SplitAnalysis split(net);
    const WaveResult res = run_wave_execution(net, split, {.ell = 1});
    const double thr = net.depth() / static_cast<double>(influence_radius(net)) + 1.0;
    t.add_row({"necessary: ratio <= d/irad+1 = " + fmt_double(thr, 2) +
                   " [MPT97 Thm 3.1]",
               net.name(),
               "wave at ratio " + fmt_double(res.timing.ratio(), 2),
               res.ok() && !res.report.linearizable() ? "1 lin + 1 SC" : "none",
               res.ok() && !res.report.sequentially_consistent() ? "confirmed"
                                                                 : "NOT FOUND"});
  }

  // --- Necessary for the bitonic network and the counting tree:
  // ratio <= 2 (LSST Thm 4.3 / 4.1). Randomized search just above 2 finds
  // witnesses on the small instances; for larger bitonic widths the
  // violating schedules are too coordinated for random search and the
  // deterministic wave witness (previous rows) takes over at its higher
  // ratio.
  for (const Network& net :
       {make_bitonic(4), make_counting_tree(4), make_counting_tree(8)}) {
    const auto r = search_violations(net, 1.0, 2.25, 4000, rng, 0.0,
                                     /*processes=*/12, /*tokens=*/3);
    t.add_row({"necessary: ratio <= 2 [LSST Thm 4.1/4.3]", net.name(),
               "random x" + std::to_string(r.trials) + " at ratio 2.25",
               std::to_string(r.lin_violations) + " lin / " +
                   std::to_string(r.sc_violations) + " SC",
               r.lin_violations > 0 ? "confirmed" : "NOT FOUND"});
  }

  // --- Sufficient: d(G)(c_max - 2 c_min) < C_g (LSST Cor 3.7). Burst
  // workloads honoring the C_g floor must always be linearizable; the
  // wave execution (C_g = 0) shows the floor matters.
  for (const std::uint32_t w : {8u, 16u}) {
    const Network net = make_bitonic(w);
    const double c_min = 1.0, c_max = 6.0;
    const double bound = net.depth() * (c_max - 2 * c_min);
    std::uint64_t violations = 0;
    const std::uint32_t trials = 100;
    for (std::uint32_t k = 0; k < trials; ++k) {
      const TimedExecution exec = burst_workload(net, c_min, c_max,
                                                 bound * 1.01, 4, w, rng);
      const SimulationResult sim = simulate(exec);
      if (sim.ok() && !is_linearizable(sim.trace)) ++violations;
    }
    t.add_row({"sufficient: d(c_max-2c_min) < C_g [LSST Cor 3.7]", net.name(),
               "bursts x" + std::to_string(trials) + ", gap > " +
                   fmt_double(bound, 0),
               std::to_string(violations) + " lin",
               violations == 0 ? "holds" : "REFUTED"});
  }

  t.print(std::cout);
  std::cout << "\nBy Theorem 3.2, every row transfers verbatim from "
               "linearizability to sequential\nconsistency: conditions on "
               "(c_min, c_max, C_g) alone cannot separate them.\n";
  return 0;
}
