// E1 — Table 1 probe: empirically exercises each known necessary /
// sufficient timing condition for linearizability (and, by Theorem 3.2,
// for sequential consistency) on the bitonic network, the periodic
// network, and the counting tree.
//
// Sufficient conditions are probed by randomized extreme-delay searches
// AT the boundary (no violation may be found); necessary conditions by
// exhibiting a violating execution just ABOVE the boundary (wave
// construction where available, randomized search otherwise). All
// probes run through the engine registry; sweeps run on the parallel
// sweeper (--threads N, default all cores) with thread-count-independent
// aggregates.
#include <iostream>

#include "bench_common.hpp"
#include "core/structure.hpp"
#include "core/valency.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const CliArgs args(argc, argv);
  const std::uint32_t threads = cn::bench::sweep_threads(args);

  std::cout << "E1: Table 1 probe — necessary and sufficient timing "
               "conditions\n\n";
  TablePrinter t({"condition (Table 1 row)", "network", "probe",
                  "violations", "verdict"});

  // --- Sufficient: c_max/c_min <= 2 (LSST99 Cor 3.10; also MPT97 Thm 4.1
  // with s(G) = d(G) for uniform networks). Probe AT ratio 2.
  for (const Network& net :
       {make_bitonic(8), make_periodic(8), make_counting_tree(8)}) {
    const auto r = cn::bench::search_violations(
        cn::bench::random_search_spec(net, 1.0, 2.0, /*seed=*/0x7AB1E), 400,
        threads);
    t.add_row({"sufficient: ratio <= 2 [LSST Cor 3.10]", net.name(),
               "random x" + std::to_string(r.trials),
               engine::violation_cell(r),
               r.lin_violations == 0 ? "holds" : "REFUTED"});
  }

  // --- Necessary: ratio <= d/irad + 1 (MPT97 Thm 3.1). For B(w) the
  // threshold is (lg w + 3)/2; the wave attack violates just above it.
  for (const std::uint32_t w : {8u, 16u, 32u}) {
    const Network net = make_bitonic(w);
    const engine::RunResult res = cn::bench::run_wave(net, /*ell=*/1);
    const double thr =
        net.depth() / static_cast<double>(influence_radius(net)) + 1.0;
    t.add_row({"necessary: ratio <= d/irad+1 = " + fmt_double(thr, 2) +
                   " [MPT97 Thm 3.1]",
               net.name(),
               "wave at ratio " + fmt_double(res.metric("ratio_used"), 2),
               res.ok() && !res.report.linearizable() ? "1 lin + 1 SC" : "none",
               res.ok() && !res.report.sequentially_consistent() ? "confirmed"
                                                                 : "NOT FOUND"});
  }

  // --- Necessary for the bitonic network and the counting tree:
  // ratio <= 2 (LSST Thm 4.3 / 4.1). Randomized search just above 2 finds
  // witnesses on the small instances; for larger bitonic widths the
  // violating schedules are too coordinated for random search and the
  // deterministic wave witness (previous rows) takes over at its higher
  // ratio.
  for (const Network& net :
       {make_bitonic(4), make_counting_tree(4), make_counting_tree(8)}) {
    const auto r = cn::bench::search_violations(
        cn::bench::random_search_spec(net, 1.0, 2.25, /*seed=*/0x7AB1E, 0.0,
                                      /*processes=*/12,
                                      /*tokens_per_process=*/3),
        4000, threads);
    t.add_row({"necessary: ratio <= 2 [LSST Thm 4.1/4.3]", net.name(),
               "random x" + std::to_string(r.trials) + " at ratio 2.25",
               engine::violation_cell(r),
               r.lin_violations > 0 ? "confirmed" : "NOT FOUND"});
  }

  // --- Sufficient: d(G)(c_max - 2 c_min) < C_g (LSST Cor 3.7). Burst
  // workloads honoring the C_g floor must always be linearizable; the
  // wave execution (C_g = 0) shows the floor matters.
  for (const std::uint32_t w : {8u, 16u}) {
    const Network net = make_bitonic(w);
    const double c_min = 1.0, c_max = 6.0;
    const double bound = net.depth() * (c_max - 2 * c_min);
    engine::SweepSpec sweep;
    sweep.base.backend = "sim_burst";
    sweep.base.net = &net;
    sweep.base.c_min = c_min;
    sweep.base.c_max = c_max;
    sweep.base.burst_gap = bound * 1.01;
    sweep.base.bursts = 4;
    sweep.base.burst_size = w;
    sweep.base.seed = 0x7AB1E;
    sweep.trials = 100;
    sweep.threads = threads;
    const engine::SweepStats r = engine::sweep_stats(sweep);
    t.add_row({"sufficient: d(c_max-2c_min) < C_g [LSST Cor 3.7]", net.name(),
               "bursts x" + std::to_string(r.trials) + ", gap > " +
                   fmt_double(bound, 0),
               engine::violation_cell(r),
               r.lin_violations == 0 ? "holds" : "REFUTED"});
  }

  t.print(std::cout);
  std::cout << "\nBy Theorem 3.2, every row transfers verbatim from "
               "linearizability to sequential\nconsistency: conditions on "
               "(c_min, c_max, C_g) alone cannot separate them.\n";
  return 0;
}
