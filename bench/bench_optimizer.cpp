// Open Problem 4 probe — how tight is Theorem 5.4's upper bound
// F_nsc <= (ℓ-2)/(ℓ-1)?
//
// Three contenders per asynchrony level ℓ (ratio just below ℓ):
//   * the paper's wave constructions (best applicable split level),
//   * the hill-climbing schedule adversary ("optimizer" backend),
//   * the theorem's ceiling.
// The gap between the best lower bound found and the ceiling is the open
// tightness question, quantified.
#include <iostream>

#include "bench_common.hpp"
#include "core/valency.hpp"

int main() {
  using namespace cn;
  std::cout << "Open Problem 4 probe: best achievable F_nsc vs the "
               "Theorem 5.4 ceiling\n\n";
  const Network net = make_bitonic(8);
  const SplitAnalysis split(net);
  TablePrinter t({"ell (ratio < ell)", "ceiling (ell-2)/(ell-1)",
                  "wave best", "search best", "search evals"});
  for (const std::uint32_t ell : {3u, 4u, 6u, 8u}) {
    const double ratio = ell * 0.999;
    double wave_best = 0.0;
    for (std::uint32_t lvl = 1; lvl <= split.split_number(); ++lvl) {
      const engine::RunResult res = cn::bench::run_wave(net, lvl, 1.0, ratio);
      if (res.ok()) wave_best = std::max(wave_best, res.report.f_nsc);
    }
    engine::RunSpec os;
    os.backend = "optimizer";
    os.net = &net;
    os.processes = 12;
    os.ops_per_process = 2;
    os.c_min = 1.0;
    os.c_max = ratio;
    os.opt_iterations = 6000;
    os.opt_restarts = 6;
    os.seed = 0xBEEF + ell;
    const engine::RunResult opt = engine::run_backend(os);
    t.add_row({std::to_string(ell), fmt_double((ell - 2.0) / (ell - 1.0)),
               fmt_double(wave_best), fmt_double(opt.metric("best_fraction")),
               std::to_string(
                   static_cast<std::uint64_t>(opt.metric("evaluations")))});
  }
  t.print(std::cout);
  std::cout << "\nTwo findings. (1) No lower bound reaches the ceiling: "
               "the gap between 1/3 (the wave,\nwhich remains the best "
               "known) and (ell-2)/(ell-1) is the paper's Open Problem 4, "
               "measured.\n(2) Annealed local search plateaus well below "
               "the wave at the same ratio — the three-wave\nexecution "
               "encodes global coordination (lockstep fronts, "
               "split-aligned speed changes) that\nlocal schedule "
               "perturbations do not assemble, which is evidence the "
               "paper's explicit\nconstruction is doing real work.\n";
  return 0;
}
