// E7 — Theorem 5.11 and Corollaries 5.12/5.13: inconsistency-fraction
// lower bounds at every split level ℓ, for the bitonic and periodic
// networks.
//
// Per (network, ℓ): the required ratio 1 + d(G)/d(S^(ℓ)), the achieved
// F_nl and F_nsc, and the paper's predictions
//   F_nl  >= 1 - 1/(2 - 2^-ℓ)      (increases towards 1/2)
//   F_nsc >= 2^-ℓ/(2 - 2^-ℓ)       (decreases towards 0)
// which coincide at 1/3 for ℓ = 1 and reach (w-1)/(2w-1) and 1/(2w-1)
// at ℓ = lg w (Corollaries 5.12/5.13). Waves run through the engine's
// "wave" backend.
#include <iostream>

#include "bench_common.hpp"
#include "core/valency.hpp"

namespace {

void sweep(const cn::Network& net, cn::TablePrinter& t) {
  using namespace cn;
  const SplitAnalysis split(net);
  for (std::uint32_t ell = 1; ell <= split.split_number(); ++ell) {
    const engine::RunResult res = cn::bench::run_wave(net, ell);
    if (!res.ok()) {
      std::cerr << net.name() << " ell=" << ell << ": " << res.error << "\n";
      continue;
    }
    t.add_row({net.name(), std::to_string(ell),
               std::to_string(
                   static_cast<std::uint32_t>(res.metric("race_depth"))),
               fmt_double(res.metric("required_ratio"), 2),
               fmt_bound(res.report.f_nl, res.metric("predicted_f_nl"), true),
               fmt_bound(res.report.f_nsc, res.metric("predicted_f_nsc"),
                         true)});
  }
}

}  // namespace

int main() {
  using namespace cn;
  std::cout << "E7: split-level inconsistency fractions (Theorem 5.11, "
               "Corollaries 5.12/5.13)\n\n";
  TablePrinter t({"network", "ell", "d(S^ell)", "required ratio",
                  "F_nl (>= bound)", "F_nsc (>= bound)"});
  for (const std::uint32_t w : {8u, 16u, 32u}) {
    sweep(make_bitonic(w), t);
    sweep(make_periodic(w), t);
  }
  t.print(std::cout);
  std::cout << "\nShape check: as ell grows the two bounds DIVERGE — F_nl "
               "climbs towards 1/2 while F_nsc\nfalls towards 0 — i.e. "
               "strong asynchrony hurts linearizability far more than "
               "sequential\nconsistency (paper, end of Section 5.3). At "
               "ell = 1 both equal 1/3; at ell = lg w they\nare "
               "(w-1)/(2w-1) and 1/(2w-1).\n";
  return 0;
}
