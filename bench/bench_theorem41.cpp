// E3 — Theorem 4.1 / Corollary 4.5: the local inter-operation delay C_L
// distinguishes sequential consistency from linearizability.
//
// On B(8) (depth 6) with c_min = 1, c_max = 8:
//   * Theorem 4.1 guarantees sequential consistency once
//       C_L > d(G) (c_max - 2 c_min) = 36.
//   * The three-wave attack (which is what breaks SC) succeeds only while
//       C_L < race_depth * c_max - (race_depth + d) * c_min = 15.
//   * Linearizability stays broken at EVERY C_L (the waves use distinct
//     processes for that witness), which is Corollary 4.5's separation.
//
// The sweep prints, per C_L: whether the Theorem 4.1 premise holds,
// whether the adversarial wave still violates SC / linearizability, and
// the violation rate of a randomized engine sweep with local delay
// floor C_L.
#include <iostream>

#include "bench_common.hpp"
#include "core/valency.hpp"
#include "sim/timing.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const CliArgs args(argc, argv);
  const std::uint32_t threads = cn::bench::sweep_threads(args);
  const Network net = make_bitonic(8);
  const SplitAnalysis split(net);
  const double c_min = 1.0, c_max = 8.0;
  const double thm41_bound = net.depth() * (c_max - 2.0 * c_min);
  const double attack_bound =
      split.race_depth(1) * c_max - (split.race_depth(1) + net.depth()) * c_min;

  std::cout << "E3: local-delay sweep on " << net.name()
            << " (Theorem 4.1 / Corollary 4.5)\n"
            << "c_min=" << c_min << " c_max=" << c_max
            << "; Theorem 4.1 guarantees SC for C_L > " << thm41_bound
            << "; the wave attack needs C_L < " << attack_bound << "\n\n";

  TablePrinter t({"C_L", "premise d(c_max-2c_min)<C_L", "wave breaks SC?",
                  "wave breaks lin?", "random SC viol.", "random lin viol.",
                  "worst F_nsc"});
  for (const double cl : {0.0, 3.0, 6.0, 9.0, 12.0, 14.9, 15.1, 18.0, 24.0,
                          30.0, 36.0, 36.1, 42.0}) {
    const engine::RunResult same_proc =
        cn::bench::run_wave(net, /*ell=*/1, c_min, c_max,
                            /*distinct_processes=*/false,
                            /*wave3_extra_delay=*/cl);
    // Corollary 4.5's linearizability witness renames every token to its
    // own process, so any C_L floor is VACUOUSLY satisfied — wave 3 may
    // re-enter immediately. This is why C_L separates the two conditions.
    const engine::RunResult diff_proc =
        cn::bench::run_wave(net, /*ell=*/1, c_min, c_max,
                            /*distinct_processes=*/true);
    if (!same_proc.ok() || !diff_proc.ok()) {
      std::cerr << "wave failed: " << same_proc.error << diff_proc.error
                << "\n";
      return 1;
    }
    const auto rand = cn::bench::search_violations(
        cn::bench::random_search_spec(net, c_min, c_max, /*seed=*/31337,
                                      /*local_delay_min=*/cl),
        /*trials=*/150, threads);
    TimingCondition cond{.c_min = c_min, .c_max = c_max};
    cond.C_L_at_least = cl;
    t.add_row({fmt_double(cl, 1),
               cn::bench::yes_no(theorem41_premise_holds(net, cond)),
               cn::bench::yes_no(!same_proc.report.sequentially_consistent()),
               cn::bench::yes_no(!diff_proc.report.linearizable()),
               std::to_string(rand.sc_violations) + "/" +
                   std::to_string(rand.trials),
               std::to_string(rand.lin_violations) + "/" +
                   std::to_string(rand.trials),
               fmt_double(std::max(same_proc.report.f_nsc, rand.worst_f_nsc))});
  }
  t.print(std::cout);
  std::cout << "\nShape check: SC violations stop at the attack bound and "
               "are provably impossible past the\nTheorem 4.1 bound, while "
               "linearizability violations persist at every C_L — the "
               "local delay\nseparates the two conditions (Corollary "
               "4.5).\n";
  return 0;
}
