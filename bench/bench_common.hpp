// Shared helpers for the experiment harnesses in bench/. All trace
// production and trial sweeping goes through the engine registry
// (src/engine): benches build a RunSpec, run it once with run_backend,
// or fan trials out with the parallel sweeper.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "core/constructions.hpp"
#include "engine/engine.hpp"
#include "sim/consistency.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace cn::bench {

/// Sweeper thread count for bench binaries: `--threads N` when given,
/// otherwise all hardware threads (aggregates are identical either way —
/// the engine derives per-trial seeds deterministically).
inline std::uint32_t sweep_threads(const CliArgs& args) {
  return static_cast<std::uint32_t>(args.get_int("threads", 0));
}

/// RunSpec for the randomized violation search every probe bench uses:
/// the "simulator" backend with the closed-loop extreme-delay workload.
inline engine::RunSpec random_search_spec(const Network& net, double c_min,
                                          double c_max, std::uint64_t seed,
                                          double local_delay_min = 0.0,
                                          std::uint32_t processes = 8,
                                          std::uint32_t tokens_per_process = 4) {
  engine::RunSpec spec;
  spec.backend = "simulator";
  spec.net = &net;
  spec.processes = processes;
  spec.ops_per_process = tokens_per_process;
  spec.c_min = c_min;
  spec.c_max = c_max;
  spec.local_delay_min = local_delay_min;
  spec.seed = seed;
  return spec;
}

/// Runs `trials` random workloads through the engine sweeper and counts
/// executions violating linearizability / sequential consistency.
inline engine::SweepStats search_violations(const engine::RunSpec& base,
                                            std::uint64_t trials,
                                            std::uint32_t threads = 0) {
  engine::SweepSpec sweep;
  sweep.base = base;
  sweep.trials = trials;
  sweep.threads = threads;
  return engine::sweep_stats(sweep);
}

/// Single adversarial wave run through the engine's "wave" backend.
inline engine::RunResult run_wave(const Network& net, std::uint32_t ell,
                                  double c_min = 1.0, double wave_c_max = 0.0,
                                  bool distinct_processes = false,
                                  double wave3_extra_delay = 0.0) {
  engine::RunSpec spec;
  spec.backend = "wave";
  spec.net = &net;
  spec.ell = ell;
  spec.c_min = c_min;
  spec.wave_c_max = wave_c_max;
  spec.distinct_processes = distinct_processes;
  spec.wave3_extra_delay = wave3_extra_delay;
  return engine::run_backend(spec);
}

inline std::string yes_no(bool b) { return b ? "yes" : "no"; }

}  // namespace cn::bench
