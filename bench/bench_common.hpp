// Shared helpers for the experiment harnesses in bench/.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "core/constructions.hpp"
#include "sim/consistency.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace cn::bench {

/// Outcome of a randomized violation search.
struct SearchResult {
  std::uint64_t trials = 0;
  std::uint64_t lin_violations = 0;   ///< Executions with a non-lin token.
  std::uint64_t sc_violations = 0;    ///< Executions with a non-SC token.
  double worst_f_nl = 0.0;
  double worst_f_nsc = 0.0;
};

/// Runs `trials` random workloads at the given wire-delay envelope and
/// counts executions violating linearizability / sequential consistency.
inline SearchResult search_violations(const Network& net, double c_min,
                                      double c_max, std::uint64_t trials,
                                      Xoshiro256& rng,
                                      double local_delay_min = 0.0,
                                      std::uint32_t processes = 8,
                                      std::uint32_t tokens_per_process = 4) {
  SearchResult out;
  out.trials = trials;
  for (std::uint64_t t = 0; t < trials; ++t) {
    WorkloadSpec spec;
    spec.processes = processes;
    spec.tokens_per_process = tokens_per_process;
    spec.c_min = c_min;
    spec.c_max = c_max;
    spec.local_delay_min = local_delay_min;
    spec.local_delay_max = local_delay_min + 2.0;
    spec.extreme_delays = true;
    const TimedExecution exec = generate_workload(net, spec, rng);
    const SimulationResult sim = simulate(exec);
    if (!sim.ok()) continue;
    const ConsistencyReport rep = analyze(sim.trace);
    if (!rep.linearizable()) ++out.lin_violations;
    if (!rep.sequentially_consistent()) ++out.sc_violations;
    out.worst_f_nl = std::max(out.worst_f_nl, rep.f_nl);
    out.worst_f_nsc = std::max(out.worst_f_nsc, rep.f_nsc);
  }
  return out;
}

inline std::string yes_no(bool b) { return b ? "yes" : "no"; }

}  // namespace cn::bench
