// Shared helpers for the experiment harnesses in bench/. All trace
// production and trial sweeping goes through the engine registry
// (src/engine): benches build a RunSpec, run it once with run_backend,
// or fan trials out with the parallel sweeper.
#pragma once

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>

#include "core/constructions.hpp"
#include "engine/engine.hpp"
#include "sim/consistency.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace cn::bench {

/// Sweeper thread count for bench binaries: `--threads N` when given,
/// otherwise all hardware threads (aggregates are identical either way —
/// the engine derives per-trial seeds deterministically).
inline std::uint32_t sweep_threads(const CliArgs& args) {
  return static_cast<std::uint32_t>(args.get_int("threads", 0));
}

/// RunSpec for the randomized violation search every probe bench uses:
/// the "simulator" backend with the closed-loop extreme-delay workload.
inline engine::RunSpec random_search_spec(const Network& net, double c_min,
                                          double c_max, std::uint64_t seed,
                                          double local_delay_min = 0.0,
                                          std::uint32_t processes = 8,
                                          std::uint32_t tokens_per_process = 4) {
  engine::RunSpec spec;
  spec.backend = "simulator";
  spec.net = &net;
  spec.processes = processes;
  spec.ops_per_process = tokens_per_process;
  spec.c_min = c_min;
  spec.c_max = c_max;
  spec.local_delay_min = local_delay_min;
  spec.seed = seed;
  return spec;
}

/// Runs `trials` random workloads through the engine sweeper and counts
/// executions violating linearizability / sequential consistency.
inline engine::SweepStats search_violations(const engine::RunSpec& base,
                                            std::uint64_t trials,
                                            std::uint32_t threads = 0) {
  engine::SweepSpec sweep;
  sweep.base = base;
  sweep.trials = trials;
  sweep.threads = threads;
  return engine::sweep_stats(sweep);
}

/// Single adversarial wave run through the engine's "wave" backend.
inline engine::RunResult run_wave(const Network& net, std::uint32_t ell,
                                  double c_min = 1.0, double wave_c_max = 0.0,
                                  bool distinct_processes = false,
                                  double wave3_extra_delay = 0.0) {
  engine::RunSpec spec;
  spec.backend = "wave";
  spec.net = &net;
  spec.ell = ell;
  spec.c_min = c_min;
  spec.wave_c_max = wave_c_max;
  spec.distinct_processes = distinct_processes;
  spec.wave3_extra_delay = wave3_extra_delay;
  return engine::run_backend(spec);
}

inline std::string yes_no(bool b) { return b ? "yes" : "no"; }

/// Calibrated wall-clock rate: repeats `batch()` — each call performing
/// `batch_units` units of work — until `min_seconds` of measured time has
/// accumulated, then returns units per second. One untimed warm-up batch
/// runs first so cold caches and lazy allocations don't pollute the rate.
/// Used by bench_micro's --json mode, where rates must be reproducible
/// without google-benchmark's reporter in the loop.
template <class Batch>
inline double measure_rate(std::uint64_t batch_units, double min_seconds,
                           Batch&& batch) {
  using clock = std::chrono::steady_clock;
  batch();  // warm-up, untimed
  std::uint64_t units = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    batch();
    units += batch_units;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(units) / elapsed;
}

}  // namespace cn::bench
