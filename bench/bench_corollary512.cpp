// Corollaries 5.12/5.13 as a width series: at the deepest split level
// ℓ = lg w, the two inconsistency fractions diverge asymptotically —
// F_nl = (w-1)/(2w-1) -> 1/2 while F_nsc = 1/(2w-1) -> 0 — at the price
// of asynchrony ratio > 1 + d(G). This regenerates that series for both
// network families up to w = 256, via the engine's "wave" backend.
#include <iostream>

#include "bench_common.hpp"
#include "core/valency.hpp"

namespace {

void series(const char* kind, cn::TablePrinter& t) {
  using namespace cn;
  for (const std::uint32_t w : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const Network net = std::string(kind) == "bitonic" ? make_bitonic(w)
                                                       : make_periodic(w);
    const SplitAnalysis split(net);
    const engine::RunResult res =
        cn::bench::run_wave(net, split.split_number());
    if (!res.ok()) {
      std::cerr << net.name() << ": " << res.error << "\n";
      continue;
    }
    t.add_row({net.name(), std::to_string(net.depth()),
               fmt_double(res.metric("required_ratio"), 0),
               fmt_bound(res.report.f_nl, (w - 1.0) / (2.0 * w - 1.0), true),
               fmt_bound(res.report.f_nsc, 1.0 / (2.0 * w - 1.0), true)});
  }
}

}  // namespace

int main() {
  using namespace cn;
  std::cout << "Corollaries 5.12/5.13: deepest-level fractions vs width\n\n";
  TablePrinter t({"network", "d(G)", "required ratio > 1+d", "F_nl",
                  "F_nsc"});
  series("bitonic", t);
  series("periodic", t);
  t.print(std::cout);
  std::cout << "\nShape check: as w grows, F_nl climbs towards 1/2 while "
               "F_nsc vanishes like 1/(2w) — in\nsystems with strong "
               "asynchrony the two consistency conditions drift maximally "
               "apart, the\npaper's closing observation (end of Section "
               "5.3). The required ratio grows with d(G), so\nthe extreme "
               "divergence needs extreme asynchrony.\n";
  return 0;
}
