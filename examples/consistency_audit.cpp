// Consistency audit of adversarial schedules: reconstructs the paper's
// three-wave execution at a chosen split level on a chosen network,
// prints every token's interval and value, and reports the inconsistency
// fractions — a worked tour of Section 5.
//
//   ./consistency_audit [--network bitonic|periodic] [--width 8] [--ell 1]
//                       [--transform]   # also run the Theorem 3.2 transform
#include <algorithm>
#include <iostream>
#include <string>

#include "core/constructions.hpp"
#include "core/valency.hpp"
#include "sim/adversary.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_int("width", 8));
  const auto ell = static_cast<std::uint32_t>(args.get_int("ell", 1));
  const Network net = args.get("network", "bitonic") == "periodic"
                          ? make_periodic(width)
                          : make_bitonic(width);

  const SplitAnalysis split(net);
  if (!split.applicable()) {
    std::cerr << net.name() << " has no split structure\n";
    return 1;
  }
  std::cout << net.name() << ": depth=" << net.depth()
            << " sd=" << split.split_depth() << " sp=" << split.split_number()
            << "\n";

  const WaveResult res = run_wave_execution(net, split, {.ell = ell});
  if (!res.ok()) {
    std::cerr << "wave construction failed: " << res.error << "\n";
    return 1;
  }
  std::cout << "three-wave execution at ell=" << ell
            << " (ratio used " << fmt_double(res.timing.ratio(), 3)
            << ", threshold " << fmt_double(res.required_ratio, 3) << ")\n\n";

  TablePrinter t({"token", "process", "wave", "enters", "exits", "value",
                  "non-lin?", "non-SC?"});
  auto flagged = [](const std::vector<TokenId>& v, TokenId tok) {
    return std::find(v.begin(), v.end(), tok) != v.end();
  };
  for (const TokenRecord& r : res.trace) {
    const std::string wave = r.token < res.wave1_size ? "1"
                             : r.token < res.wave1_size + res.wave2_size
                                 ? "2"
                                 : "3";
    t.add_row({std::to_string(r.token), std::to_string(r.process), wave,
               fmt_double(r.t_in, 1), fmt_double(r.t_out, 1),
               std::to_string(r.value),
               flagged(res.report.non_linearizable, r.token) ? "X" : "",
               flagged(res.report.non_sequentially_consistent, r.token) ? "X"
                                                                        : ""});
  }
  t.print(std::cout);
  std::cout << "\nF_nl=" << fmt_double(res.report.f_nl) << " (paper bound "
            << fmt_double(res.predicted_f_nl) << ")   F_nsc="
            << fmt_double(res.report.f_nsc) << " (paper bound "
            << fmt_double(res.predicted_f_nsc) << ")\n";

  if (args.get_bool("transform", false)) {
    std::cout << "\n--- Theorem 3.2 transform ---\n";
    const WaveResult base =
        run_wave_execution(net, split, {.ell = ell, .distinct_processes = true});
    const Theorem32Result tr = run_theorem32_transform(net, base.exec);
    if (!tr.ok()) {
      std::cerr << "transform failed: " << tr.error << "\n";
      return 1;
    }
    std::cout << "base: linearizable=" << tr.base_report.linearizable()
              << " SC=" << tr.base_report.sequentially_consistent() << "\n"
              << "transformed (+" << tr.inserted_per_wire * net.fan_in()
              << " lockstep tokens): SC="
              << tr.transformed_report.sequentially_consistent()
              << "  witness pair: token " << tr.witness_T << " -> inserted "
              << tr.inserted_token << "\n";
  }
  return 0;
}
