// Consistency audit of adversarial schedules: reconstructs the paper's
// three-wave execution at a chosen split level on a chosen network
// through the experiment engine's "wave" backend, prints every token's
// interval and value, and reports the inconsistency fractions — a worked
// tour of Section 5.
//
//   ./consistency_audit [--network bitonic|periodic] [--width 8] [--ell 1]
//                       [--transform]   # also run the Theorem 3.2 transform
//                       [--json]        # dump the engine RunResult as JSON
#include <algorithm>
#include <iostream>
#include <string>

#include "core/valency.hpp"
#include "engine/engine.hpp"
#include "sim/adversary.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const CliArgs args(argc, argv);

  engine::RunSpec spec;
  spec.backend = "wave";
  spec.network = args.get("network", "bitonic");
  spec.width = static_cast<std::uint32_t>(args.get_int("width", 8));
  spec.ell = static_cast<std::uint32_t>(args.get_int("ell", 1));

  const engine::RunResult res = engine::run_backend(spec);
  if (!res.ok()) {
    std::cerr << "wave construction failed: " << res.error << "\n";
    return 1;
  }
  if (args.get_bool("json", false)) {
    std::cout << engine::to_json(res) << "\n";
    return 0;
  }

  const Network& net = *res.exec.net;
  const SplitAnalysis split(net);
  std::cout << net.name() << ": depth=" << net.depth()
            << " sd=" << split.split_depth() << " sp=" << split.split_number()
            << "\n";
  std::cout << "three-wave execution at ell=" << spec.ell << " (ratio used "
            << fmt_double(res.metric("ratio_used"), 3) << ", threshold "
            << fmt_double(res.metric("required_ratio"), 3) << ")\n\n";

  const auto wave1 = static_cast<TokenId>(res.metric("wave1_size"));
  const auto wave2 = static_cast<TokenId>(res.metric("wave2_size"));
  TablePrinter t({"token", "process", "wave", "enters", "exits", "value",
                  "non-lin?", "non-SC?"});
  auto flagged = [](const std::vector<TokenId>& v, TokenId tok) {
    return std::find(v.begin(), v.end(), tok) != v.end();
  };
  for (const TokenRecord& r : res.trace) {
    const std::string wave =
        r.token < wave1 ? "1" : r.token < wave1 + wave2 ? "2" : "3";
    t.add_row({std::to_string(r.token), std::to_string(r.process), wave,
               fmt_double(r.t_in, 1), fmt_double(r.t_out, 1),
               std::to_string(r.value),
               flagged(res.report.non_linearizable, r.token) ? "X" : "",
               flagged(res.report.non_sequentially_consistent, r.token) ? "X"
                                                                        : ""});
  }
  t.print(std::cout);
  std::cout << "\nF_nl=" << fmt_double(res.report.f_nl) << " (paper bound "
            << fmt_double(res.metric("predicted_f_nl")) << ")   F_nsc="
            << fmt_double(res.report.f_nsc) << " (paper bound "
            << fmt_double(res.metric("predicted_f_nsc")) << ")\n";

  if (args.get_bool("transform", false)) {
    std::cout << "\n--- Theorem 3.2 transform ---\n";
    engine::RunSpec base_spec = spec;
    base_spec.distinct_processes = true;
    const engine::RunResult base = engine::run_backend(base_spec);
    if (!base.ok()) {
      std::cerr << "base wave failed: " << base.error << "\n";
      return 1;
    }
    const Theorem32Result tr = run_theorem32_transform(net, base.exec);
    if (!tr.ok()) {
      std::cerr << "transform failed: " << tr.error << "\n";
      return 1;
    }
    std::cout << "base: linearizable=" << tr.base_report.linearizable()
              << " SC=" << tr.base_report.sequentially_consistent() << "\n"
              << "transformed (+" << tr.inserted_per_wire * net.fan_in()
              << " lockstep tokens): SC="
              << tr.transformed_report.sequentially_consistent()
              << "  witness pair: token " << tr.witness_T << " -> inserted "
              << tr.inserted_token << "\n";
  }
  return 0;
}
