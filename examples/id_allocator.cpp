// Unique-id allocation with audit: worker threads draw ids from a
// counting network (e.g. addresses, shard slots, request tickets — the
// paper's Section 1 use cases), every draw is recorded, and the recorded
// trace is fed to the consistency analyzers to report the observed
// non-linearizability / non-sequential-consistency fractions.
//
//   ./id_allocator [--width 8] [--threads 4] [--ops 500] [--local-delay-us 0]
#include <iostream>
#include <map>

#include "concurrent/concurrent_network.hpp"
#include "concurrent/harness.hpp"
#include "core/constructions.hpp"
#include "sim/consistency.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_int("width", 8));
  ConcurrentRunSpec spec;
  spec.threads = static_cast<std::uint32_t>(args.get_int("threads", 4));
  spec.ops_per_thread = static_cast<std::uint64_t>(args.get_int("ops", 500));
  spec.local_delay_ns =
      static_cast<std::uint64_t>(args.get_int("local-delay-us", 0)) * 1000;

  const Network topo = make_bitonic(width);
  ConcurrentNetwork net(topo);
  const ConcurrentRunResult run = run_recorded(net, spec);
  if (!run.ok()) {
    std::cerr << "run failed: " << run.error << "\n";
    return 1;
  }

  const ConsistencyReport rep = analyze(run.trace);
  std::cout << "allocated " << rep.total << " ids from " << topo.name()
            << " at " << static_cast<std::uint64_t>(run.ops_per_sec)
            << " ids/s\n\n";

  // Per-thread view: count of ids, min/max, and whether the thread's own
  // sequence was monotone (the sequential-consistency property).
  TablePrinter t({"thread", "ids", "first", "last", "monotone"});
  std::map<ProcessId, std::vector<const TokenRecord*>> per;
  for (const TokenRecord& r : run.trace) per[r.process].push_back(&r);
  for (auto& [proc, recs] : per) {
    std::sort(recs.begin(), recs.end(),
              [](const TokenRecord* a, const TokenRecord* b) {
                return a->first_seq < b->first_seq;
              });
    bool monotone = true;
    for (std::size_t i = 1; i < recs.size(); ++i) {
      monotone &= recs[i]->value > recs[i - 1]->value;
    }
    t.add_row({std::to_string(proc), std::to_string(recs.size()),
               std::to_string(recs.front()->value),
               std::to_string(recs.back()->value), monotone ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::cout << "\nobserved F_nl=" << fmt_double(rep.f_nl)
            << "  F_nsc=" << fmt_double(rep.f_nsc) << "  ("
            << rep.non_linearizable.size() << " non-linearizable, "
            << rep.non_sequentially_consistent.size()
            << " non-sequentially-consistent ids)\n";
  if (spec.local_delay_ns > 0) {
    std::cout << "local delay between draws: " << spec.local_delay_ns / 1000
              << " us (Theorem 4.1's C_L knob)\n";
  }
  return 0;
}
