// Quickstart: build a bitonic counting network, hit it from several
// threads, and verify the values are unique and gap-free and the output
// wires satisfy the step property.
//
//   ./quickstart [--width 8] [--threads 4] [--ops 1000]
#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "concurrent/concurrent_network.hpp"
#include "core/constructions.hpp"
#include "core/verify.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_int("width", 8));
  const auto threads = static_cast<std::uint32_t>(args.get_int("threads", 4));
  const auto ops = static_cast<std::uint64_t>(args.get_int("ops", 1000));

  // 1. Build the topology (a plain value type) and instantiate it in
  //    shared memory.
  const Network topo = make_bitonic(width);
  ConcurrentNetwork net(topo);
  std::cout << "network: " << topo.name() << "  depth=" << topo.depth()
            << "  balancers=" << topo.num_balancers() << "\n";

  // 2. Each thread shepherds tokens from its own input wire.
  std::vector<std::vector<std::uint64_t>> got(threads);
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      got[t].reserve(ops);
      for (std::uint64_t k = 0; k < ops; ++k) {
        got[t].push_back(net.increment(t % topo.fan_in()));
      }
    });
  }
  for (auto& w : workers) w.join();

  // 3. Verify: all values distinct, no gaps, step property at quiescence.
  std::vector<std::uint64_t> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  bool ok = true;
  for (std::uint64_t i = 0; i < all.size(); ++i) ok &= (all[i] == i);
  const auto counts = net.sink_counts();
  const bool step = has_step_property(counts);

  std::cout << "issued " << all.size() << " values: "
            << (ok ? "gap-free and duplicate-free" : "CORRUPT") << "\n";
  std::cout << "step property at quiescence: " << (step ? "holds" : "VIOLATED")
            << "  (sink counts:";
  for (const auto c : counts) std::cout << ' ' << c;
  std::cout << ")\n";
  return ok && step ? 0 : 1;
}
