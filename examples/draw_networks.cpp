// Draws the paper's network constructions as ASCII art (Figures 2-6) and
// prints their structural profile — handy for building intuition about
// layers, split depths, and valencies.
//
//   ./draw_networks [--width 8] [--network bitonic|periodic|merger|block|tree]
#include <iostream>

#include "core/constructions.hpp"
#include "core/render.hpp"
#include "core/valency.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cn;
  const CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_int("width", 8));
  const std::string kind = args.get("network", "all");

  auto show = [](const Network& net) {
    std::cout << render_ascii(net) << "\n";
    const SplitAnalysis sa(net);
    if (sa.applicable()) {
      std::cout << "split depth " << sa.split_depth() << ", split number "
                << sa.split_number() << "; split layers at:";
      for (std::uint32_t ell = 1; ell <= sa.split_number(); ++ell) {
        std::cout << ' ' << sa.split_layer_abs(ell);
      }
      std::cout << "\n\n";
    }
  };

  if (kind == "all" || kind == "bitonic") show(make_bitonic(width));
  if (kind == "all" || kind == "merger") show(make_merger(width));
  if (kind == "all" || kind == "block") show(make_block(width));
  if (kind == "all" || kind == "periodic") show(make_periodic(width));
  if (kind == "all" || kind == "tree") {
    std::cout << render_summary(make_counting_tree(width)) << "\n";
  }
  return 0;
}
