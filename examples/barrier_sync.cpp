// Barrier synchronization from a counter (paper Section 1.1): each of n
// processes increments a shared counter when it reaches the barrier and
// busy-waits; the process that obtains the round's last value releases
// everyone. A sequentially consistent counter suffices — exactly the
// motivating application the paper gives for studying SC (rather than
// linearizable) counting networks.
//
//   ./barrier_sync [--threads 4] [--rounds 50] [--width 8]
#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "concurrent/concurrent_network.hpp"
#include "core/constructions.hpp"
#include "util/cli.hpp"

namespace {

/// Counting-network-backed reusable barrier. Round r is released once
/// some thread obtains value (r+1)*n - 1; uniqueness of counter values
/// guarantees exactly one releaser per round.
class NetworkBarrier {
 public:
  NetworkBarrier(const cn::Network& topo, std::uint32_t parties)
      : net_(topo), parties_(parties) {}

  void arrive_and_wait(std::uint32_t thread) {
    const std::uint64_t v = net_.increment(thread % net_.network().fan_in());
    const std::uint64_t round = v / parties_;
    if (v % parties_ == parties_ - 1) {
      released_.store(round + 1, std::memory_order_release);
    } else {
      std::uint32_t spins = 0;
      while (released_.load(std::memory_order_acquire) < round + 1) {
        if (++spins % 64 == 0) std::this_thread::yield();
      }
    }
  }

 private:
  cn::ConcurrentNetwork net_;
  const std::uint64_t parties_;
  std::atomic<std::uint64_t> released_{0};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  const CliArgs args(argc, argv);
  const auto threads = static_cast<std::uint32_t>(args.get_int("threads", 4));
  const auto rounds = static_cast<std::uint64_t>(args.get_int("rounds", 50));
  const auto width = static_cast<std::uint32_t>(args.get_int("width", 8));

  const Network topo = make_bitonic(width);
  NetworkBarrier barrier(topo, threads);

  // Each thread bumps a local phase counter per round; after each barrier
  // crossing, all threads must agree on the phase — the classic barrier
  // correctness check.
  std::vector<std::uint64_t> phase(threads, 0);
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> shared_phase{0};
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t r = 0; r < rounds; ++r) {
        ++phase[t];
        barrier.arrive_and_wait(t);
        // After the barrier, every thread has incremented its phase to
        // at least r+1; the shared phase may only move forward.
        std::uint64_t seen = shared_phase.load(std::memory_order_acquire);
        while (seen < r + 1 &&
               !shared_phase.compare_exchange_weak(seen, r + 1)) {
        }
        if (phase[t] != r + 1) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();

  bool ok = mismatches.load() == 0;
  for (std::uint32_t t = 0; t < threads; ++t) ok &= (phase[t] == rounds);
  std::cout << threads << " threads crossed " << rounds
            << " barrier rounds over " << topo.name() << ": "
            << (ok ? "all phases consistent" : "PHASE MISMATCH") << "\n";
  return ok ? 0 : 1;
}
